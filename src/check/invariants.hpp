#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/forwarding.hpp"
#include "core/path_code.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/trace.hpp"
#include "util/ids.hpp"

namespace telea {

/// The protocol invariant catalog. Each rule encodes one structural property
/// the paper states (or relies on) but the seed code never checked as a
/// whole; docs/STATIC_ANALYSIS.md maps every rule to its paper section.
enum class InvariantRule : std::uint8_t {
  // --- addressing (Sec. III-B, Algorithms 1-3) -----------------------------
  kAddrParentPrefix,   // child code = parent code + position in parent space
  kAddrSiblingUnique,  // no two children of one parent share a position
  kAddrCodeBounds,     // codes are sink-rooted and within length bounds
  // --- forwarding (Sec. III-C) ---------------------------------------------
  kFwdClaimJustified,      // every relay claim satisfies rule 1, 2 or 3
  kFwdUniqueDelivery,      // at most one final delivery per control seqno
  kFwdVerdictConservation, // every tracked command resolves exactly once
  // --- tables (Sec. III-C3) ------------------------------------------------
  kTblLeaseMonotone,   // unreachable leases carry sane, monotone timestamps
  // --- collection plane ----------------------------------------------------
  kCtpNoLoop,          // no persistent routing loop in the parent snapshot
};

[[nodiscard]] const char* invariant_rule_name(InvariantRule r) noexcept;
/// The paper section (or component) the rule encodes, for reports and docs.
[[nodiscard]] const char* invariant_rule_section(InvariantRule r) noexcept;
[[nodiscard]] std::optional<InvariantRule> invariant_rule_from_name(
    std::string_view name) noexcept;

/// One recorded violation: the failing node, the rule, an auxiliary operand
/// (peer node or control seqno, matching the rule's trace `b` convention)
/// and a human-readable expected-vs-actual diff.
struct InvariantViolation {
  SimTime time = 0;
  NodeId node = kInvalidNode;
  InvariantRule rule{};
  std::uint64_t aux = 0;
  std::string detail;
};

/// Thrown by fail-fast mode so a test run stops at the first violation
/// instead of soaking on corrupted state.
class InvariantViolationError : public std::runtime_error {
 public:
  explicit InvariantViolationError(const InvariantViolation& v);
  [[nodiscard]] const InvariantViolation& violation() const noexcept {
    return violation_;
  }

 private:
  InvariantViolation violation_;
};

struct InvariantConfig {
  /// Structural checkpoint cadence (parent-prefix, sibling, bounds, lease,
  /// loop rules). Event-driven rules (claims, deliveries, verdicts) fire at
  /// the moment of the event regardless.
  SimTime checkpoint_interval = 30 * kSecond;
  /// Throw InvariantViolationError at the first violation (tests).
  bool fail_fast = false;
  /// Evaluate the CTP routing-loop rule. A loop is reported only when the
  /// same cycle persists across two consecutive checkpoints — CTP repairs
  /// transient loops itself, and a snapshot mid-repair is not a bug.
  bool check_ctp_loops = true;
  /// final_audit() treats still-pending commands as violations. Leave off
  /// for runs that end mid-lifecycle (a soak's command window can close with
  /// retries still backed off); turn on when the drain is generous.
  bool expect_all_resolved = false;
  /// Checkpoints a node is excused from cross-node addressing rules after
  /// coming back from an outage. A child that was down while its allocator
  /// re-allocated legitimately holds a doubly-stale code until the normal
  /// beacon/report exchange reconciles it — that is repair, not corruption.
  /// The mismatch is still flagged if it outlives this window. The window
  /// must cover a trickle-suppressed beacon round (minutes at steady
  /// state), which is what ultimately carries the reconciliation.
  std::uint64_t revival_grace_checkpoints = 8;
};

/// Checkpoint snapshot of one node's protocol state. Pure data: the harness
/// builds these from live stacks, tests fabricate them directly.
struct InvariantNodeView {
  struct ChildEntry {
    NodeId child = kInvalidNode;
    std::uint32_t position = 0;
    PathCode new_code;
    PathCode old_code;
    bool confirmed = false;
  };
  struct NeighborEntry {
    NodeId neighbor = kInvalidNode;
    PathCode new_code;
    PathCode old_code;
    bool unreachable = false;
    SimTime unreachable_since = 0;
  };

  NodeId id = kInvalidNode;
  bool alive = true;
  bool has_addressing = false;  // false for non-TeleAdjusting stacks
  PathCode code;
  PathCode old_code;
  NodeId code_parent = kInvalidNode;
  std::uint8_t space_bits = 0;
  bool reserve_zero_position = true;
  std::vector<ChildEntry> children;
  std::vector<NeighborEntry> neighbors;
  NodeId ctp_parent = kInvalidNode;
  /// When this node last heard its CTP parent's beacon. The loop rule only
  /// walks *fresh* parent edges (heard since the previous checkpoint): a
  /// pointer frozen by a link fault is stale state awaiting repair, not an
  /// active route — CTP's loop-freedom guarantee needs connectivity.
  SimTime ctp_parent_heard = 0;
  /// Advertised path cost (ETX*10). Part of the loop fingerprint: a cycle
  /// whose member costs rise between checkpoints is count-to-infinity repair
  /// in motion (the costs climb until one crosses max_path_etx10 and the
  /// cycle tears itself down); only a cycle with *frozen* costs is stuck.
  std::uint16_t ctp_cost = 0;
};

/// The runtime invariant engine (tentpole of the correctness-tooling layer):
/// a registry of named, subsystem-scoped checks evaluated at configurable
/// checkpoints plus event-driven audits fed by the forwarding plane and the
/// controller. Violations are reported through the Tracer (one
/// `invariant_violation` record carrying the failing node and rule id), the
/// metrics layer (Network::collect_metrics exports
/// telea_invariant_violations_total per rule) and the log (a human-readable
/// expected-vs-actual diff), and optionally abort the run (fail_fast).
///
/// Compiled out by -DTELEA_INVARIANTS=OFF: the engine still exists but every
/// check body is a no-op, so call sites need no guards.
class InvariantEngine final : public ForwardingAuditor {
 public:
  using ViewProvider = std::function<std::vector<InvariantNodeView>()>;

  InvariantEngine(Simulator& sim, const InvariantConfig& config);

  InvariantEngine(const InvariantEngine&) = delete;
  InvariantEngine& operator=(const InvariantEngine&) = delete;

  /// Violations are trace-linked when a tracer is attached (nullptr detaches).
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Fired on every recorded violation, before fail_fast gets to throw —
  /// the harness hooks the flight-recorder dump here so the post-mortem is
  /// captured even when the run is about to abort.
  std::function<void(const InvariantViolation&)> on_violation;

  /// Starts periodic checkpoints over `provider`'s snapshots.
  void start(ViewProvider provider);
  void stop();

  /// Evaluates every structural rule against `views` now. Returns the number
  /// of new violations. Also reachable through the periodic checkpoints.
  std::size_t run_checkpoint(const std::vector<InvariantNodeView>& views);

  // --- ForwardingAuditor (event-driven forwarding rules) -------------------
  void on_claim(NodeId node, const msg::ControlPacket& packet,
                TraceReason stated, bool rescue) override;
  void on_final_delivery(NodeId node, const msg::ControlPacket& packet,
                         bool direct) override;

  // --- command lifecycle conservation (fed by the Controller) --------------
  void note_command_issued(std::uint32_t first_seqno);
  void note_command_resolved(std::uint32_t first_seqno);
  /// A node lost its volatile state (state-loss reboot): per-seqno delivery
  /// dedup on that node legitimately resets.
  void note_node_reset(NodeId node);

  /// End-of-run conservation audit: every issued command resolved exactly
  /// once (pending commands violate only under expect_all_resolved).
  /// Returns the number of new violations.
  std::size_t final_audit();

  // --- results -------------------------------------------------------------
  [[nodiscard]] const std::vector<InvariantViolation>& violations()
      const noexcept {
    return violations_;
  }
  [[nodiscard]] std::size_t violation_count(InvariantRule rule) const noexcept;
  [[nodiscard]] std::uint64_t checkpoints_run() const noexcept {
    return checkpoints_;
  }
  [[nodiscard]] std::uint64_t claims_audited() const noexcept {
    return claims_audited_;
  }
  [[nodiscard]] const InvariantConfig& config() const noexcept {
    return config_;
  }
  /// One line per violation (for logs / test output).
  [[nodiscard]] std::string render_report() const;
  void clear();

 private:
  void report(NodeId node, InvariantRule rule, std::uint64_t aux,
              std::string detail);
  void check_addressing(const InvariantNodeView& v);
  void check_child_cross(const std::vector<InvariantNodeView>& views,
                         std::set<std::string>* pending);
  void check_leases(const InvariantNodeView& v,
                    std::map<std::uint64_t, SimTime>* leases);
  void check_ctp_loops(const std::vector<InvariantNodeView>& views,
                       std::set<std::string>* pending);
  [[nodiscard]] bool in_revival_grace(NodeId node) const;
  [[nodiscard]] static bool claim_justified(const InvariantNodeView& v,
                                            const msg::ControlPacket& packet,
                                            bool rescue, std::string* why);

  Simulator* sim_;
  InvariantConfig config_;
  Tracer* tracer_ = nullptr;
  ViewProvider provider_;
  Timer checkpoint_timer_;

  std::vector<InvariantViolation> violations_;
  std::map<std::uint8_t, std::size_t> by_rule_;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t claims_audited_ = 0;

  // Cross-checkpoint persistence gates: a candidate cross-node finding only
  // becomes a violation when the identical fingerprint shows up at two
  // consecutive checkpoints (protocol transients — an AllocationAck in
  // flight, a CTP repair mid-way — are gone by the next checkpoint).
  std::set<std::string> pending_child_mismatch_;
  std::set<std::string> pending_loops_;
  // Checkpoint index at which each node was last observed dead; recently
  // revived nodes get config_.revival_grace_checkpoints of slack on the
  // cross-node addressing rules while the protocol reconciles their state.
  std::map<NodeId, std::uint64_t> last_dead_checkpoint_;
  SimTime last_checkpoint_time_ = 0;
  // (node << 16 | neighbor) -> unreachable_since at the last checkpoint.
  std::map<std::uint64_t, SimTime> lease_since_;

  // Delivery bookkeeping: seqno -> first delivering node, and the reset
  // epoch of that node at delivery time. A node's epoch bumps on each
  // state-loss reboot; re-delivery of a seqno at the same node is legitimate
  // exactly when the node's epoch has advanced since the recorded delivery.
  std::map<std::uint32_t, NodeId> delivered_by_;
  std::map<std::uint32_t, unsigned> delivery_epoch_;
  std::map<NodeId, unsigned> reset_epoch_;
  // Command lifecycle: first_seqno -> resolution count.
  std::map<std::uint32_t, unsigned> commands_;
};

}  // namespace telea
