#include "check/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace telea {

const char* invariant_rule_name(InvariantRule r) noexcept {
  switch (r) {
    case InvariantRule::kAddrParentPrefix: return "addr.parent_prefix";
    case InvariantRule::kAddrSiblingUnique: return "addr.sibling_unique";
    case InvariantRule::kAddrCodeBounds: return "addr.code_bounds";
    case InvariantRule::kFwdClaimJustified: return "fwd.claim_justified";
    case InvariantRule::kFwdUniqueDelivery: return "fwd.unique_delivery";
    case InvariantRule::kFwdVerdictConservation:
      return "fwd.verdict_conservation";
    case InvariantRule::kTblLeaseMonotone: return "tbl.lease_monotone";
    case InvariantRule::kCtpNoLoop: return "ctp.no_loop";
  }
  return "?";
}

const char* invariant_rule_section(InvariantRule r) noexcept {
  switch (r) {
    case InvariantRule::kAddrParentPrefix: return "Sec. III-B1/B4, Alg. 2";
    case InvariantRule::kAddrSiblingUnique: return "Sec. III-B2, Alg. 1-2";
    case InvariantRule::kAddrCodeBounds: return "Sec. III-B1/B3";
    case InvariantRule::kFwdClaimJustified: return "Sec. III-C1/C2";
    case InvariantRule::kFwdUniqueDelivery: return "Sec. III-C5";
    case InvariantRule::kFwdVerdictConservation: return "Sec. III-C3/C5";
    case InvariantRule::kTblLeaseMonotone: return "Sec. III-C3";
    case InvariantRule::kCtpNoLoop: return "CTP (Gnawali et al.)";
  }
  return "?";
}

std::optional<InvariantRule> invariant_rule_from_name(
    std::string_view name) noexcept {
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(InvariantRule::kCtpNoLoop); ++i) {
    const auto r = static_cast<InvariantRule>(i);
    if (name == invariant_rule_name(r)) return r;
  }
  return std::nullopt;
}

namespace {

std::string format_violation(const InvariantViolation& v) {
  std::ostringstream out;
  out << "invariant " << invariant_rule_name(v.rule) << " ("
      << invariant_rule_section(v.rule) << ") violated at node " << v.node
      << " t=" << to_seconds(v.time) << "s: " << v.detail;
  return out.str();
}

}  // namespace

InvariantViolationError::InvariantViolationError(const InvariantViolation& v)
    : std::runtime_error(format_violation(v)), violation_(v) {}

InvariantEngine::InvariantEngine(Simulator& sim, const InvariantConfig& config)
    : sim_(&sim), config_(config), checkpoint_timer_(sim) {
  checkpoint_timer_.set_tag("check.invariants");
  checkpoint_timer_.set_callback([this] {
    if (provider_) run_checkpoint(provider_());
  });
}

void InvariantEngine::start(ViewProvider provider) {
  provider_ = std::move(provider);
#ifndef TELEA_INVARIANTS_DISABLED
  if (config_.checkpoint_interval > 0) {
    checkpoint_timer_.start_periodic(config_.checkpoint_interval);
  }
#endif
}

void InvariantEngine::stop() { checkpoint_timer_.stop(); }

void InvariantEngine::report(NodeId node, InvariantRule rule,
                             std::uint64_t aux, std::string detail) {
  InvariantViolation v;
  v.time = sim_->now();
  v.node = node;
  v.rule = rule;
  v.aux = aux;
  v.detail = std::move(detail);
  TELEA_TRACE_EVENT(tracer_, v.time, v.node, TraceEvent::kInvariantViolation,
                    static_cast<std::uint64_t>(rule), aux);
  TELEA_WARN("check.invariants") << format_violation(v);
  ++by_rule_[static_cast<std::uint8_t>(rule)];
  violations_.push_back(v);
  if (on_violation) on_violation(violations_.back());
  if (config_.fail_fast) throw InvariantViolationError(violations_.back());
}

std::size_t InvariantEngine::violation_count(
    InvariantRule rule) const noexcept {
  const auto it = by_rule_.find(static_cast<std::uint8_t>(rule));
  return it == by_rule_.end() ? 0 : it->second;
}

std::string InvariantEngine::render_report() const {
  std::ostringstream out;
  for (const auto& v : violations_) out << format_violation(v) << "\n";
  return out.str();
}

void InvariantEngine::clear() {
  violations_.clear();
  by_rule_.clear();
  pending_child_mismatch_.clear();
  pending_loops_.clear();
  last_dead_checkpoint_.clear();
  lease_since_.clear();
  delivered_by_.clear();
  delivery_epoch_.clear();
  reset_epoch_.clear();
  commands_.clear();
}

// ---------------------------------------------------------------------------
// Structural checkpoint rules
// ---------------------------------------------------------------------------

std::size_t InvariantEngine::run_checkpoint(
    const std::vector<InvariantNodeView>& views) {
#ifdef TELEA_INVARIANTS_DISABLED
  (void)views;
  return 0;
#else
  const std::size_t before = violations_.size();
  ++checkpoints_;
  for (const auto& v : views) {
    if (!v.alive) last_dead_checkpoint_[v.id] = checkpoints_;
  }
  std::map<std::uint64_t, SimTime> leases;
  for (const auto& v : views) {
    if (!v.alive || !v.has_addressing) continue;
    check_addressing(v);
    check_leases(v, &leases);
  }
  lease_since_ = std::move(leases);

  std::set<std::string> pending_children;
  check_child_cross(views, &pending_children);
  pending_child_mismatch_ = std::move(pending_children);

  if (config_.check_ctp_loops) {
    std::set<std::string> pending_loops;
    check_ctp_loops(views, &pending_loops);
    pending_loops_ = std::move(pending_loops);
  }
  last_checkpoint_time_ = sim_->now();
  return violations_.size() - before;
#endif
}

void InvariantEngine::check_addressing(const InvariantNodeView& v) {
  // --- code bounds (the code is sink-rooted and within capacity) -----------
  if (!v.code.empty()) {
    if (v.code.size() > BitString::kCapacity) {
      report(v.id, InvariantRule::kAddrCodeBounds, v.code.size(),
             "code length " + std::to_string(v.code.size()) +
                 " exceeds capacity " + std::to_string(BitString::kCapacity));
    } else if (v.code.bit(0) != false) {
      report(v.id, InvariantRule::kAddrCodeBounds, 0,
             "code " + v.code.to_string() +
                 " does not extend the sink code '0' (first bit must be 0)");
    }
  }

  // --- parent-side allocation table (positions + derived codes) ------------
  if (v.children.empty()) return;
  const std::uint32_t first = v.reserve_zero_position ? 1u : 0u;
  std::set<std::uint32_t> positions;
  for (const auto& e : v.children) {
    if (v.space_bits > 0) {
      const bool in_space =
          e.position >= first &&
          (v.space_bits >= 32 ||
           e.position < (1ULL << v.space_bits));
      if (!in_space) {
        report(v.id, InvariantRule::kAddrCodeBounds, e.child,
               "child " + std::to_string(e.child) + " position " +
                   std::to_string(e.position) + " outside the " +
                   std::to_string(v.space_bits) + "-bit space [" +
                   std::to_string(first) + ", 2^" +
                   std::to_string(v.space_bits) + ")");
      }
    }
    if (!positions.insert(e.position).second) {
      report(v.id, InvariantRule::kAddrSiblingUnique, e.child,
             "child " + std::to_string(e.child) + " shares position " +
                 std::to_string(e.position) + " with a sibling");
    }
    // An empty entry code means the allocation itself failed (code capacity
    // exhausted) — there is nothing to hold the entry to.
    if (!v.code.empty() && v.space_bits > 0 && !e.new_code.empty()) {
      const PathCode expected =
          make_child_code(v.code, e.position, v.space_bits);
      if (!expected.empty() && e.new_code != expected) {
        report(v.id, InvariantRule::kAddrParentPrefix, e.child,
               "child " + std::to_string(e.child) + " table code " +
                   e.new_code.to_string() + " != derived code " +
                   expected.to_string() + " (own code " + v.code.to_string() +
                   " + position " + std::to_string(e.position) + " in " +
                   std::to_string(v.space_bits) + " bits)");
      }
    }
  }
}

bool InvariantEngine::in_revival_grace(NodeId node) const {
  const auto it = last_dead_checkpoint_.find(node);
  if (it == last_dead_checkpoint_.end()) return false;
  return checkpoints_ - it->second <= config_.revival_grace_checkpoints;
}

void InvariantEngine::check_child_cross(
    const std::vector<InvariantNodeView>& views,
    std::set<std::string>* pending) {
  std::map<NodeId, const InvariantNodeView*> by_id;
  for (const auto& v : views) by_id[v.id] = &v;

  for (const auto& c : views) {
    if (!c.alive || !c.has_addressing || c.code.empty()) continue;
    if (c.code_parent == kInvalidNode || c.code_parent == c.id) continue;
    const auto pit = by_id.find(c.code_parent);
    if (pit == by_id.end()) continue;
    const InvariantNodeView& p = *pit->second;
    // A dead or state-wiped allocator no longer vouches for anything; the
    // child legitimately keeps (and uses) its stale code (Sec. III-B6).
    if (!p.alive || !p.has_addressing) continue;
    // Either side freshly back from an outage is still reconciling: the
    // allocator may have re-allocated while the child was deaf (or the
    // allocator's table went stale while it was down). Give the normal
    // repair exchange a bounded number of checkpoints before flagging.
    if (in_revival_grace(c.id) || in_revival_grace(p.id)) continue;
    const auto entry =
        std::find_if(p.children.begin(), p.children.end(),
                     [&c](const auto& e) { return e.child == c.id; });
    if (entry == p.children.end()) continue;
    // An empty entry code means the allocator itself could not derive one
    // (code capacity exhausted, e.g. deep re-parenting churn in a
    // partitioned island) — it vouches for nothing.
    if (entry->new_code.empty()) continue;
    if (c.code == entry->new_code || c.code == entry->old_code) continue;
    // Candidate mismatch: report only if it also held one checkpoint ago —
    // an AllocationAck in flight is consistency repair, not corruption.
    std::string fp = "a1:" + std::to_string(c.id) + ":" + c.code.to_string() +
                     ":" + entry->new_code.to_string();
    if (pending_child_mismatch_.contains(fp)) {
      report(c.id, InvariantRule::kAddrParentPrefix, c.code_parent,
             "own code " + c.code.to_string() + " matches neither code the "
                 "allocator (node " +
                 std::to_string(c.code_parent) + ") holds for it (new " +
                 entry->new_code.to_string() + ", old " +
                 entry->old_code.to_string() + ") across two checkpoints");
    } else {
      pending->insert(std::move(fp));
    }
  }
}

void InvariantEngine::check_leases(const InvariantNodeView& v,
                                   std::map<std::uint64_t, SimTime>* leases) {
  const SimTime now = sim_->now();
  for (const auto& e : v.neighbors) {
    if (!e.unreachable) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(v.id) << 16) | e.neighbor;
    if (e.unreachable_since > now) {
      report(v.id, InvariantRule::kTblLeaseMonotone, e.neighbor,
             "unreachable lease for neighbor " + std::to_string(e.neighbor) +
                 " stamped in the future (" +
                 std::to_string(to_seconds(e.unreachable_since)) + "s > now " +
                 std::to_string(to_seconds(now)) + "s)");
    } else if (const auto it = lease_since_.find(key);
               it != lease_since_.end() && e.unreachable_since < it->second) {
      report(v.id, InvariantRule::kTblLeaseMonotone, e.neighbor,
             "unreachable lease for neighbor " + std::to_string(e.neighbor) +
                 " moved backwards (" +
                 std::to_string(to_seconds(it->second)) + "s -> " +
                 std::to_string(to_seconds(e.unreachable_since)) + "s)");
    }
    (*leases)[key] = e.unreachable_since;
  }
}

void InvariantEngine::check_ctp_loops(
    const std::vector<InvariantNodeView>& views,
    std::set<std::string>* pending) {
  // Only *fresh* parent edges participate: the node must have heard its
  // parent's beacon since the previous checkpoint. A pointer frozen by a
  // link blackout or partition is stale state awaiting repair — CTP's
  // loop-freedom guarantee only applies where beacons actually flow.
  std::map<NodeId, NodeId> parent;
  std::map<NodeId, std::uint16_t> cost;
  for (const auto& v : views) {
    if (v.alive && v.ctp_parent != kInvalidNode &&
        v.ctp_parent_heard >= last_checkpoint_time_) {
      parent[v.id] = v.ctp_parent;
      cost[v.id] = v.ctp_cost;
    }
  }
  std::set<std::string> handled;
  for (const auto& [start, unused] : parent) {
    (void)unused;
    std::vector<NodeId> walk;
    std::set<NodeId> seen;
    NodeId cur = start;
    while (parent.contains(cur) && seen.insert(cur).second) {
      walk.push_back(cur);
      cur = parent[cur];
    }
    if (!parent.contains(cur)) continue;  // chain left the graph: no cycle
    // `cur` re-appeared: the cycle is the walk suffix starting at cur.
    const auto at = std::find(walk.begin(), walk.end(), cur);
    if (at == walk.end()) continue;  // entered the cycle upstream of it
    std::vector<NodeId> cycle(at, walk.end());
    std::vector<NodeId> sorted = cycle;
    std::sort(sorted.begin(), sorted.end());
    // The fingerprint carries each member's advertised cost: a cycle whose
    // costs rise between checkpoints is count-to-infinity repair in motion
    // (the costs climb until one crosses max_path_etx10 and the cycle tears
    // itself down) — only a cycle *frozen* in both shape and cost is stuck.
    std::string fp = "loop:";
    std::string path;
    for (const NodeId n : sorted) {
      fp += std::to_string(n) + "@" + std::to_string(cost[n]) + ",";
    }
    for (const NodeId n : cycle) path += std::to_string(n) + "->";
    path += std::to_string(cur);
    // One report per distinct cycle, however many chains lead into it.
    if (!handled.insert(fp).second) continue;
    if (pending_loops_.contains(fp)) {
      report(sorted.front(), InvariantRule::kCtpNoLoop, cycle.size(),
             "routing loop persisted across two checkpoints: " + path);
    } else {
      pending->insert(std::move(fp));
    }
  }
}

// ---------------------------------------------------------------------------
// Event-driven forwarding rules
// ---------------------------------------------------------------------------

bool InvariantEngine::claim_justified(const InvariantNodeView& v,
                                      const msg::ControlPacket& packet,
                                      bool rescue, std::string* why) {
  const bool detoured = packet.detour_via != kInvalidNode;
  const NodeId target = detoured ? packet.detour_via : packet.dest;
  const PathCode& route = detoured ? packet.detour_code : packet.dest_code;
  if (v.id == packet.dest || v.id == target) return true;   // delivery leg
  if (v.id == packet.expected_relay) return true;           // condition (1)

  const std::size_t bar = packet.expected_relay_code_len;
  const auto progress = [&route](const PathCode& code) -> std::size_t {
    return !code.empty() && code.is_prefix_of(route) ? code.size() : 0;
  };
  // Condition (2): own on-path prefix beats (rescue: meets) the expectation.
  const std::size_t mine = std::max(progress(v.code), progress(v.old_code));
  if (mine > bar || (rescue && mine > 0 && mine >= bar)) return true;
  // Condition (3): a known neighbor or child could beat the expectation.
  // The live decision additionally gates on link quality and unreachable
  // marks; auditing against the unrestricted candidate set means no claim
  // the forwarding plane could legitimately make is ever flagged.
  for (const auto& e : v.neighbors) {
    if (std::max(progress(e.new_code), progress(e.old_code)) > bar) {
      return true;
    }
  }
  for (const auto& e : v.children) {
    if (std::max(progress(e.new_code), progress(e.old_code)) > bar) {
      return true;
    }
  }
  if (why != nullptr) {
    *why = "no claim condition holds: not the expected relay (" +
           std::to_string(packet.expected_relay) + "), own progress " +
           std::to_string(mine) + " vs expectation " + std::to_string(bar) +
           " toward " + route.to_string() +
           ", and no known neighbor progresses further";
  }
  return false;
}

void InvariantEngine::on_claim(NodeId node, const msg::ControlPacket& packet,
                               TraceReason stated, bool rescue) {
#ifdef TELEA_INVARIANTS_DISABLED
  (void)node; (void)packet; (void)stated; (void)rescue;
#else
  if (!provider_) return;
  const std::vector<InvariantNodeView> views = provider_();
  const auto it = std::find_if(views.begin(), views.end(),
                               [node](const auto& v) { return v.id == node; });
  if (it == views.end()) return;
  ++claims_audited_;
  std::string why;
  if (!claim_justified(*it, packet, rescue, &why)) {
    report(node, InvariantRule::kFwdClaimJustified, packet.seqno,
           "claim of control seqno " + std::to_string(packet.seqno) +
               " (stated condition: " + trace_reason_name(stated) +
               (rescue ? ", feedback rescue" : "") + ") is unjustified — " +
               why);
  }
#endif
}

void InvariantEngine::on_final_delivery(NodeId node,
                                        const msg::ControlPacket& packet,
                                        bool /*direct*/) {
#ifdef TELEA_INVARIANTS_DISABLED
  (void)node; (void)packet;
#else
  if (node != packet.dest) {
    report(node, InvariantRule::kFwdUniqueDelivery, packet.seqno,
           "control seqno " + std::to_string(packet.seqno) +
               " consumed at node " + std::to_string(node) +
               " but is addressed to node " + std::to_string(packet.dest));
    return;
  }
  const unsigned epoch = [this, node] {
    const auto it = reset_epoch_.find(node);
    return it == reset_epoch_.end() ? 0u : it->second;
  }();
  const auto it = delivered_by_.find(packet.seqno);
  if (it == delivered_by_.end()) {
    delivered_by_[packet.seqno] = node;
    delivery_epoch_[packet.seqno] = epoch;
    return;
  }
  if (it->second != node) {
    report(node, InvariantRule::kFwdUniqueDelivery, packet.seqno,
           "control seqno " + std::to_string(packet.seqno) +
               " already delivered at node " + std::to_string(it->second));
    return;
  }
  // Same node again: legitimate only if a state-loss reboot wiped the
  // destination's dedup state in between.
  if (delivery_epoch_[packet.seqno] >= epoch) {
    report(node, InvariantRule::kFwdUniqueDelivery, packet.seqno,
           "control seqno " + std::to_string(packet.seqno) +
               " delivered twice at node " + std::to_string(node) +
               " with no state loss in between");
  }
  delivery_epoch_[packet.seqno] = epoch;
#endif
}

void InvariantEngine::note_node_reset(NodeId node) {
#ifdef TELEA_INVARIANTS_DISABLED
  (void)node;
#else
  ++reset_epoch_[node];
#endif
}

// ---------------------------------------------------------------------------
// Command lifecycle conservation
// ---------------------------------------------------------------------------

void InvariantEngine::note_command_issued(std::uint32_t first_seqno) {
#ifdef TELEA_INVARIANTS_DISABLED
  (void)first_seqno;
#else
  commands_.try_emplace(first_seqno, 0);
#endif
}

void InvariantEngine::note_command_resolved(std::uint32_t first_seqno) {
#ifdef TELEA_INVARIANTS_DISABLED
  (void)first_seqno;
#else
  const auto it = commands_.find(first_seqno);
  if (it == commands_.end()) {
    report(kSinkNode, InvariantRule::kFwdVerdictConservation, first_seqno,
           "command (first seqno " + std::to_string(first_seqno) +
               ") resolved without ever being issued");
    return;
  }
  if (++it->second > 1) {
    report(kSinkNode, InvariantRule::kFwdVerdictConservation, first_seqno,
           "command (first seqno " + std::to_string(first_seqno) +
               ") resolved " + std::to_string(it->second) +
               " times — a lifecycle must close exactly once");
  }
#endif
}

std::size_t InvariantEngine::final_audit() {
#ifdef TELEA_INVARIANTS_DISABLED
  return 0;
#else
  const std::size_t before = violations_.size();
  if (config_.expect_all_resolved) {
    for (const auto& [seqno, resolutions] : commands_) {
      if (resolutions == 0) {
        report(kSinkNode, InvariantRule::kFwdVerdictConservation, seqno,
               "command (first seqno " + std::to_string(seqno) +
                   ") never resolved — no verdict reached the controller");
      }
    }
  }
  return violations_.size() - before;
#endif
}

}  // namespace telea
