#include "sim/simulator.hpp"

#include <limits>

namespace telea {

bool Simulator::step(SimTime until) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > until) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  fired.callback();
  return true;
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (step(until)) ++executed;
  // Even with no event exactly at `until`, the clock should land there so
  // callers can continue from a well-defined point.
  if (now_ < until) now_ = until;
  return executed;
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  while (step(std::numeric_limits<SimTime>::max())) ++executed;
  return executed;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0;
}

}  // namespace telea
