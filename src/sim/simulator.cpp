#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

namespace telea {

std::string SimProfile::render() const {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "events dispatched: %llu, max queue depth: %zu, wall: %.3fs\n",
                static_cast<unsigned long long>(events_dispatched),
                max_queue_depth, wall_seconds);
  out += buf;
  std::vector<std::pair<std::string, KindStats>> rows(by_kind.begin(),
                                                      by_kind.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.wall_seconds > b.second.wall_seconds;
  });
  for (const auto& [tag, stats] : rows) {
    std::snprintf(buf, sizeof(buf), "  %-24s %10llu events  %10.6fs wall\n",
                  tag.c_str(), static_cast<unsigned long long>(stats.count),
                  stats.wall_seconds);
    out += buf;
  }
  return out;
}

bool Simulator::step_profiled(SimTime until) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > until) return false;
  profile_.max_queue_depth = std::max(profile_.max_queue_depth, queue_.size());
  auto fired = queue_.pop();
  now_ = fired.time;
  const auto t0 = std::chrono::steady_clock::now();
  fired.callback();
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(t1 - t0).count();
  ++profile_.events_dispatched;
  profile_.wall_seconds += elapsed;
  auto& kind = profile_.by_kind[fired.tag != nullptr ? fired.tag : "(untagged)"];
  ++kind.count;
  kind.wall_seconds += elapsed;
  return true;
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (step(until)) ++executed;
  // Even with no event exactly at `until`, the clock should land there so
  // callers can continue from a well-defined point.
  if (now_ < until) now_ = until;
  return executed;
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  while (step(std::numeric_limits<SimTime>::max())) ++executed;
  return executed;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0;
  profile_ = SimProfile{};
}

}  // namespace telea
