#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace telea {

EventHandle EventQueue::schedule(SimTime when, Callback cb, const char* tag) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(cb), tag});
  live_.insert(seq);
  return EventHandle{seq};
}

void EventQueue::cancel(EventHandle& handle) {
  if (!handle.valid()) return;
  // erase() returning 0 means the event already fired or was cancelled;
  // both are harmless no-ops by contract.
  live_.erase(handle.id_);
  handle.reset();
}

void EventQueue::skim() {
  while (!heap_.empty() && !live_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  skim();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  assert(!heap_.empty());
  // priority_queue::top() is const, so the callback is copied out; a
  // std::function copy is cheap relative to the event work it wraps.
  Fired fired{heap_.top().time, heap_.top().callback, heap_.top().tag};
  live_.erase(heap_.top().seq);
  heap_.pop();
  return fired;
}

void EventQueue::clear() {
  heap_ = {};
  live_.clear();
}

}  // namespace telea
