#pragma once

#include <cstdint>

namespace telea {

/// Simulation time in microseconds since experiment start. 64 bits give
/// ~585,000 years of range — overflow is not a practical concern.
using SimTime = std::uint64_t;

/// Signed durations for arithmetic that can go negative (offsets, jitter).
using SimDuration = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

namespace time_literals {
constexpr SimTime operator""_us(unsigned long long v) { return v; }
constexpr SimTime operator""_ms(unsigned long long v) { return v * kMillisecond; }
constexpr SimTime operator""_s(unsigned long long v) { return v * kSecond; }
constexpr SimTime operator""_min(unsigned long long v) { return v * kMinute; }
constexpr SimTime operator""_h(unsigned long long v) { return v * kHour; }
}  // namespace time_literals

[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

[[nodiscard]] constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

}  // namespace telea
