#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace telea {

/// RAII one-shot / periodic timer bound to a Simulator — the C++ analogue of
/// TinyOS's Timer interface. Destroying (or stopping) the timer cancels any
/// pending firing, so a component can never be called back after teardown.
class Timer {
 public:
  using Callback = std::function<void()>;

  explicit Timer(Simulator& sim) : sim_(&sim) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { stop(); }

  void set_callback(Callback cb) { callback_ = std::move(cb); }

  /// Names this timer's firings for the simulator self-profiler (string
  /// literal lifetime required). Optional; untagged timers profile together.
  void set_tag(const char* tag) noexcept { tag_ = tag; }

  /// Fires once after `delay`. Restarting an armed timer re-arms it.
  void start_one_shot(SimTime delay) {
    stop();
    period_ = 0;
    arm(delay);
  }

  /// Fires every `period`, first firing after `period`.
  void start_periodic(SimTime period) {
    stop();
    period_ = period;
    arm(period);
  }

  /// Fires every `period`, first firing after `initial_delay`.
  void start_periodic_at(SimTime initial_delay, SimTime period) {
    stop();
    period_ = period;
    arm(initial_delay);
  }

  void stop() { sim_->cancel(handle_); }

  [[nodiscard]] bool running() const noexcept { return handle_.valid(); }

 private:
  void arm(SimTime delay) {
    handle_ = sim_->schedule_in(delay, [this] { fire(); }, tag_);
  }

  void fire() {
    handle_.reset();  // the event just consumed itself
    if (period_ > 0) arm(period_);
    if (callback_) callback_();
  }

  Simulator* sim_;
  Callback callback_;
  EventHandle handle_;
  SimTime period_ = 0;
  const char* tag_ = nullptr;
};

}  // namespace telea
