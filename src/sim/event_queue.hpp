#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>

#include "sim/time.hpp"

namespace telea {

/// Handle for a scheduled event, used to cancel it. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }
  constexpr void reset() noexcept { id_ = 0; }

 private:
  friend class EventQueue;
  explicit constexpr EventHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Deterministic discrete-event queue. Events at equal times fire in
/// scheduling order (FIFO tie-break via a monotone sequence number), which
/// makes runs bit-reproducible regardless of heap internals.
///
/// Cancellation is lazy: a live-set of pending event ids is kept alongside
/// the heap; cancel is an O(1) erase and stale heap entries are skipped on
/// pop. Important because the LPL MAC cancels a pending retransmission on
/// every acknowledgement.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when`. `when` may equal the current
  /// head time; ordering among equal-time events is FIFO. `tag` optionally
  /// names the event kind for the simulator's self-profiler; it must point
  /// to a string literal (or otherwise outlive the event).
  EventHandle schedule(SimTime when, Callback cb, const char* tag = nullptr);

  /// Cancels a previously scheduled event. Safe to call with an invalid or
  /// already-fired handle (no-op). Invalidates `handle`.
  void cancel(EventHandle& handle);

  [[nodiscard]] bool empty() const noexcept { return live_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return live_.size(); }

  /// Time of the next live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Pops and returns the next live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    Callback callback;
    const char* tag = nullptr;  // event-kind tag, nullptr when untagged
  };
  Fired pop();

  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // scheduling order, also the handle id
    Callback callback;
    const char* tag = nullptr;

    // Min-heap: std::priority_queue is a max-heap, so invert.
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void skim();

  std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> live_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace telea
