#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace telea {

/// The discrete-event simulation kernel: a virtual clock plus an event queue.
/// Components schedule callbacks at absolute or relative virtual times; run()
/// advances the clock event-by-event. Single-threaded and deterministic.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` after `delay` from now.
  EventHandle schedule_in(SimTime delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at absolute time `when`; times in the past fire
  /// immediately-next (clamped to now).
  EventHandle schedule_at(SimTime when, EventQueue::Callback cb) {
    return queue_.schedule(when < now_ ? now_ : when, std::move(cb));
  }

  void cancel(EventHandle& handle) { queue_.cancel(handle); }

  /// Runs until the queue drains or the clock passes `until` (events at
  /// exactly `until` still fire). Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Executes at most one pending event. Returns false when the queue is
  /// empty or the next event is beyond `until`.
  bool step(SimTime until);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Drops all pending events and resets the clock to zero.
  void reset();

 private:
  EventQueue queue_;
  SimTime now_ = 0;
};

}  // namespace telea
