#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace telea {

/// Self-profiling counters the kernel gathers about its own dispatch loop
/// when profiling is enabled: how many events ran, how deep the queue got,
/// and where the host wall-clock actually went, per event-kind tag.
struct SimProfile {
  struct KindStats {
    std::uint64_t count = 0;
    double wall_seconds = 0.0;
  };

  std::uint64_t events_dispatched = 0;
  std::size_t max_queue_depth = 0;
  double wall_seconds = 0.0;
  /// Keyed by the tag passed at schedule time; untagged events aggregate
  /// under "(untagged)".
  std::map<std::string, KindStats> by_kind;

  /// Human-readable table, sorted by wall-clock share.
  [[nodiscard]] std::string render() const;
};

/// The discrete-event simulation kernel: a virtual clock plus an event queue.
/// Components schedule callbacks at absolute or relative virtual times; run()
/// advances the clock event-by-event. Single-threaded and deterministic.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` after `delay` from now. `tag` labels the event kind for
  /// the self-profiler (string literal lifetime required).
  EventHandle schedule_in(SimTime delay, EventQueue::Callback cb,
                          const char* tag = nullptr) {
    return queue_.schedule(now_ + delay, std::move(cb), tag);
  }

  /// Schedules `cb` at absolute time `when`; times in the past fire
  /// immediately-next (clamped to now).
  EventHandle schedule_at(SimTime when, EventQueue::Callback cb,
                          const char* tag = nullptr) {
    return queue_.schedule(when < now_ ? now_ : when, std::move(cb), tag);
  }

  void cancel(EventHandle& handle) { queue_.cancel(handle); }

  /// Runs until the queue drains or the clock passes `until` (events at
  /// exactly `until` still fire). Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Executes at most one pending event. Returns false when the queue is
  /// empty or the next event is beyond `until`.
  bool step(SimTime until) {
    if (profiling_) return step_profiled(until);
    if (queue_.empty()) return false;
    if (queue_.next_time() > until) return false;
    auto fired = queue_.pop();
    now_ = fired.time;
    fired.callback();
    return true;
  }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Drops all pending events and resets the clock to zero (profiling
  /// counters included).
  void reset();

  /// Toggles dispatch-loop self-profiling. Off by default: the profiled
  /// path adds two steady_clock reads per event, so step() only takes it
  /// when enabled.
  void set_profiling(bool enabled) noexcept { profiling_ = enabled; }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }
  [[nodiscard]] const SimProfile& profile() const noexcept { return profile_; }
  void clear_profile() { profile_ = SimProfile{}; }

 private:
  bool step_profiled(SimTime until);

  EventQueue queue_;
  SimTime now_ = 0;
  bool profiling_ = false;
  SimProfile profile_;
};

}  // namespace telea
