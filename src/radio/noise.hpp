#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace telea {

/// Synthetic substitute for TOSSIM's `meyer-heavy.txt` noise trace (which is
/// not distributable here — see DESIGN.md §4). Statistically similar shape:
/// a Gaussian noise floor around -98 dBm with a two-state Markov burst
/// process lifting readings into the -80…-45 dBm band, producing the
/// heavy-tailed, temporally-correlated noise the paper's simulations rely on.
struct SyntheticTraceConfig {
  double floor_mean_dbm = -98.0;
  double floor_sigma_db = 1.5;
  double burst_mean_dbm = -72.0;
  double burst_sigma_db = 9.0;
  double p_enter_burst = 0.02;   // per reading
  double p_leave_burst = 0.25;   // per reading
  double min_dbm = -105.0;
  double max_dbm = -40.0;
  std::size_t length = 20000;    // readings
};

/// Generates a meyer-heavy-like trace of quantized dBm readings.
[[nodiscard]] std::vector<std::int8_t> generate_heavy_noise_trace(
    const SyntheticTraceConfig& config, std::uint64_t seed);

/// CPM (Closest-Pattern Matching) noise model, after Lee, Cerpa & Levis,
/// "Improving wireless simulation through noise modeling" (IPSN'07) — the
/// model TOSSIM uses and the paper adopts (Sec. IV-A1).
///
/// Training builds a conditional probability table: a hash of the last
/// `history` quantized readings maps to the empirical distribution of the
/// next reading. Generation walks the chain, falling back to the marginal
/// distribution for patterns never observed in training. This reproduces the
/// burstiness and temporal correlation of measured noise, which independent
/// Gaussian sampling cannot.
class CpmNoiseModel {
 public:
  /// Trains the table from a trace of quantized dBm readings.
  CpmNoiseModel(const std::vector<std::int8_t>& trace, std::size_t history = 3);

  /// A generator: an independent random walk over the trained model. Each
  /// node owns one so noise processes across nodes are uncorrelated (as in
  /// TOSSIM, where each node gets its own CPM instance).
  class Generator {
   public:
    Generator(const CpmNoiseModel& model, std::uint64_t seed,
              std::uint64_t stream);

    /// Noise in dBm at virtual time `t`. Advances the underlying process in
    /// fixed steps; queries far apart are decorrelated by re-seeding from the
    /// marginal (bounded catch-up keeps cost O(1) per query).
    [[nodiscard]] double noise_dbm(SimTime t);

    /// The process step period (how long one reading is "held").
    [[nodiscard]] SimTime step_period() const noexcept { return kStep; }

   private:
    static constexpr SimTime kStep = 2 * kMillisecond;
    static constexpr std::size_t kMaxCatchUpSteps = 32;

    void advance_one();

    const CpmNoiseModel* model_;
    Pcg32 rng_;
    std::vector<std::int8_t> recent_;  // last `history` readings
    double current_dbm_;
    SimTime current_step_ = 0;
    bool primed_ = false;
  };

  [[nodiscard]] Generator make_generator(std::uint64_t seed,
                                         std::uint64_t stream) const {
    return Generator(*this, seed, stream);
  }

  [[nodiscard]] std::size_t history() const noexcept { return history_; }

  /// Mean of the training trace (useful as a static noise floor estimate).
  [[nodiscard]] double marginal_mean_dbm() const noexcept {
    return marginal_mean_;
  }

 private:
  friend class Generator;

  [[nodiscard]] static std::uint64_t pattern_hash(
      const std::vector<std::int8_t>& recent) noexcept;

  /// Samples the next reading given the recent pattern.
  [[nodiscard]] std::int8_t sample_next(const std::vector<std::int8_t>& recent,
                                        Pcg32& rng) const;

  /// Samples from the marginal distribution.
  [[nodiscard]] std::int8_t sample_marginal(Pcg32& rng) const;

  std::size_t history_;
  // pattern hash -> all observed successors (sampling uniformly from the
  // successor bag reproduces the empirical conditional distribution).
  std::unordered_map<std::uint64_t, std::vector<std::int8_t>> table_;
  std::vector<std::int8_t> marginal_;
  double marginal_mean_ = -98.0;
};

}  // namespace telea
