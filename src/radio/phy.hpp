#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace telea {

/// Analytic model of the CC2420 radio (IEEE 802.15.4, 2.4 GHz O-QPSK DSSS),
/// the radio on both the MicaZ motes the paper simulates and the TelosB
/// motes on its testbed. Constants follow the CC2420 datasheet; the
/// SINR→BER→PRR curve is the standard 802.15.4 analytic model (as used by
/// TOSSIM's closed-form PHY and by Zuniga & Krishnamachari's link-layer
/// model).
class Cc2420Phy {
 public:
  static constexpr double kBitRateBps = 250'000.0;
  static constexpr double kSensitivityDbm = -95.0;  // datasheet typical -95
  /// PHY synchronization header: 4B preamble + 1B SFD + 1B length.
  static constexpr std::size_t kPhyHeaderBytes = 6;
  /// Hardware ACK frame: 5-byte MPDU + PHY header.
  static constexpr std::size_t kAckMpduBytes = 5;
  /// Radio turnaround (rx->tx) before an ACK is sent: 192 us (12 symbols).
  static constexpr SimTime kTurnaroundTime = 192;

  // Typical CC2420 current draw (datasheet, 3V supply), used by the duty
  // cycle / energy accounting in the MAC layer.
  static constexpr double kRxCurrentMa = 18.8;
  static constexpr double kTxCurrentMa0Dbm = 17.4;
  static constexpr double kSleepCurrentUa = 0.02;

  /// Airtime of a frame whose MPDU is `mpdu_bytes` long, including the PHY
  /// synchronization header.
  [[nodiscard]] static constexpr SimTime airtime(std::size_t mpdu_bytes) noexcept {
    const double bits = static_cast<double>((kPhyHeaderBytes + mpdu_bytes) * 8);
    return static_cast<SimTime>(bits / kBitRateBps * 1e6);
  }

  [[nodiscard]] static constexpr SimTime ack_airtime() noexcept {
    return airtime(kAckMpduBytes);
  }

  /// Transmit power in dBm for a CC2420 PA_LEVEL register setting (0..31).
  /// The datasheet tabulates the even levels {31:0, 27:-1, 23:-3, 19:-5,
  /// 15:-7, 11:-10, 7:-15, 3:-25}; intermediate levels are interpolated.
  /// The paper uses level 2 (testbed) and 31 (time-sync broadcaster).
  [[nodiscard]] static double tx_power_dbm(int pa_level) noexcept;

  /// Bit error rate at the given SINR (dB) for 802.15.4 O-QPSK with DSSS:
  ///   BER = (8/15)·(1/16)·Σ_{k=2..16} (-1)^k·C(16,k)·exp(20·γ·(1/k − 1))
  /// where γ is the linear SINR.
  [[nodiscard]] static double bit_error_rate(double sinr_db) noexcept;

  /// Packet reception ratio for an `mpdu_bytes`-long frame at `sinr_db`,
  /// gated on the received power clearing the radio sensitivity floor.
  [[nodiscard]] static double packet_reception_ratio(double sinr_db,
                                                     double rssi_dbm,
                                                     std::size_t mpdu_bytes) noexcept;
};

}  // namespace telea
