#include "radio/packet.hpp"

namespace telea {

namespace {

// Bytes needed to carry `bits` valid bits plus a length octet.
std::size_t code_bytes(const BitString& code) noexcept {
  return 1 + (code.size() + 7) / 8;
}

struct PayloadSize {
  std::size_t operator()(const msg::CtpBeacon& b) const noexcept {
    // parent(2) + etx(2) + seqno(1) + options(1) [+ claim: pos(2)+len(1)]
    return 6 + (b.has_position_claim ? 3u : 0u);
  }
  std::size_t operator()(const msg::CtpData& d) const noexcept {
    // origin(2)+seqno(1)+thl(1)+etx(2)+flags(1) + ack seqno when carried
    // + the piggybacked code report when present
    return 7 + (d.is_control_ack ? 4u : 0u) +
           (d.has_code_report ? code_bytes(d.reported_code) : 0u) +
           (d.has_health ? msg::kHealthReportBytes : 0u);
  }
  std::size_t operator()(const msg::TeleBeacon& b) const noexcept {
    // code + space(1) + flags(1) + entries: child(2)+position(2)+flag packed
    return code_bytes(b.parent_code) + 2 + b.entries.size() * 5;
  }
  std::size_t operator()(const msg::PositionRequest&) const noexcept {
    return 1;
  }
  std::size_t operator()(const msg::AllocationAck& a) const noexcept {
    return 3 + code_bytes(a.parent_code);  // position(2)+space(1)+code
  }
  std::size_t operator()(const msg::ConfirmFrame&) const noexcept {
    return 2;  // position
  }
  std::size_t operator()(const msg::ControlPacket& c) const noexcept {
    // dest(2)+code + relay(2)+len(1) + seqno(4)+command(2)+mode/hops(2)
    std::size_t n = 13 + code_bytes(c.dest_code);
    if (c.detour_via != kInvalidNode) n += 2 + code_bytes(c.detour_code);
    return n;
  }
  std::size_t operator()(const msg::FeedbackPacket& f) const noexcept {
    return 2 + (*this)(f.packet);
  }
  std::size_t operator()(const msg::GroupControlPacket& g) const noexcept {
    // relay(2)+len(1)+seqno(4)+command(2)+hops(1)+count(1) + per-dest entry
    std::size_t n = 11;
    for (const auto& d : g.dests) n += 2 + code_bytes(d.code);
    return n;
  }
  std::size_t operator()(const msg::DripMsg&) const noexcept {
    return 11;  // key(2)+version(4)+dest(2)+command(2)+hops(1)
  }
  std::size_t operator()(const msg::RplDao& d) const noexcept {
    return 1 + d.targets.size() * 2 + (d.non_storing ? 5u : 0u);
  }
  std::size_t operator()(const msg::RplData& d) const noexcept {
    // dest(2)+seqno(4)+command(2)+hops(1) + routing header when present
    return 9 + (d.source_route.empty()
                    ? 0u
                    : 1u + d.source_route.size() * 2);
  }
  std::size_t operator()(const msg::OrplAnnounce&) const noexcept {
    return OrplBloom::bits() / 8 + 3;  // filter + etx(2) + seqno(1)
  }
  std::size_t operator()(const msg::OrplData&) const noexcept {
    return 11;  // dest(2)+seqno(4)+command(2)+etx(2)+hops(1)
  }
};

}  // namespace

std::size_t wire_size_bytes(const Frame& frame) noexcept {
  return kMacHeaderBytes + std::visit(PayloadSize{}, frame.payload) +
         kMacFooterBytes;
}

}  // namespace telea
