#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace telea {

/// 2-D node position in meters.
struct Position {
  double x = 0;
  double y = 0;
};

[[nodiscard]] double distance_m(const Position& a, const Position& b) noexcept;

/// Log-distance path-loss model, matching the paper's TOSSIM setup:
/// PL(d) = PL(d0) + 10·n·log10(d/d0) + X_sigma, with path exponent n = 4 "to
/// approximate challenging signal propagation environments" (Sec. IV-A1).
/// X_sigma is log-normal shadowing sampled once per directed link (static
/// per experiment, as in TOSSIM's gain files).
struct PathLossConfig {
  double exponent = 4.0;       // n
  double reference_m = 1.0;    // d0
  double loss_at_reference_db = 55.0;  // PL(d0) for 2.4 GHz with antenna gains
  double shadowing_sigma_db = 3.2;     // per-link log-normal shadowing
  /// Correlation between the two directions of a link's shadowing. Shadowing
  /// is mostly environmental (obstructions affect both directions alike);
  /// residual asymmetry comes from hardware/antenna differences. Measured
  /// link studies put the correlation high — default 0.7. 1.0 makes links
  /// perfectly symmetric, 0.0 fully independent.
  double shadowing_correlation = 0.7;
  bool symmetric_shadowing = false;  // shortcut for correlation = 1

};

/// Precomputed per-link attenuation table: loss_db(tx, rx) such that
/// rssi_dbm = tx_power_dbm - loss_db. Built once per topology from positions
/// and a seed; immutable afterwards (mirrors a TOSSIM gain file).
class LinkGainTable {
 public:
  LinkGainTable(const std::vector<Position>& positions,
                const PathLossConfig& config, std::uint64_t seed);

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Path loss in dB from tx to rx. Precondition: tx != rx, both < count.
  [[nodiscard]] double loss_db(NodeId tx, NodeId rx) const noexcept {
    return loss_[static_cast<std::size_t>(tx) * n_ + rx];
  }

  /// Received power at rx for a transmission from tx at `tx_power_dbm`.
  [[nodiscard]] double rssi_dbm(NodeId tx, NodeId rx,
                                double tx_power_dbm) const noexcept {
    return tx_power_dbm - loss_db(tx, rx);
  }

  /// Nodes whose loss from `tx` is below `max_loss_db` — the candidate
  /// receiver set the medium iterates over (everything beyond is guaranteed
  /// below sensitivity even at zero noise).
  [[nodiscard]] const std::vector<NodeId>& neighbors_within(
      NodeId tx) const noexcept {
    return neighbors_[tx];
  }

  /// Recomputes the candidate-neighbor lists for a given loss cutoff.
  void build_neighbor_lists(double max_loss_db);

 private:
  std::size_t n_;
  std::vector<double> loss_;  // row-major [tx][rx]
  std::vector<std::vector<NodeId>> neighbors_;
};

}  // namespace telea
