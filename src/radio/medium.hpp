#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "radio/interferer.hpp"
#include "radio/noise.hpp"
#include "radio/packet.hpp"
#include "radio/propagation.hpp"
#include "sim/simulator.hpp"

namespace telea {

/// What a node that decoded a frame copy wants to do with it. TeleAdjusting's
/// opportunistic forwarding hinges on kAcceptAndAck from nodes that are *not*
/// the link-layer addressee (anycast): any eligible overhearer may claim the
/// packet by acknowledging (paper Sec. III-C2).
enum class AckDecision : std::uint8_t {
  kIgnore,        // drop silently (still overheard it; caller already acted)
  kAccept,        // consume, no acknowledgement (broadcast receptions)
  kAcceptAndAck,  // consume and acknowledge the transmitter
};

/// Per-node interface the MAC implements to talk to the shared medium.
class MediumListener {
 public:
  virtual ~MediumListener() = default;

  /// A frame copy was decoded at this node. `rssi_dbm` is the received
  /// power. The return value drives link-layer acknowledgement.
  virtual AckDecision on_frame(const Frame& frame, double rssi_dbm) = 0;

  /// This node's own transmission copy (and its ack window) completed.
  /// `acked` is true when an acknowledgement was successfully decoded;
  /// `acker` identifies who claimed the frame (valid only when acked).
  virtual void on_tx_done(bool acked, NodeId acker) = 0;
};

struct MediumConfig {
  double tx_power_dbm = -28.0;  // CC2420 PA level 2 (paper's testbed setting)
  /// Candidate-receiver cutoff: links lossier than this are never considered
  /// (guaranteed below sensitivity even at zero noise).
  double max_loss_db = 0.0;  // 0 means derive from tx power and sensitivity
  /// Extra margin (dB) past sensitivity for the neighbor cutoff derivation.
  double cutoff_margin_db = 3.0;
  /// Capture threshold for colliding acknowledgements: the strongest acker
  /// must clear the sum of the others by this much to be decodable.
  double ack_capture_db = 3.0;
  /// Co-channel rejection: when structured interference (concurrent 802.15.4
  /// transmissions) dominates the noise floor, the signal must clear the
  /// floor by this margin or reception fails outright. The analytic DSSS BER
  /// formula alone is far too forgiving for collisions (~0.9 PRR at 0 dB
  /// SINR); the CC2420 datasheet puts co-channel rejection near 3 dB.
  double capture_threshold_db = 3.0;
};

/// The shared wireless channel: packet-granularity SINR arbitration in the
/// style of TOSSIM. A transmission locks every in-range listening radio at
/// its start; at its end, each locked receiver samples CPM noise, sums the
/// power of all overlapping transmissions (energy-weighted by overlap) plus
/// WiFi interference, and draws reception from the CC2420 PRR curve.
class RadioMedium {
 public:
  RadioMedium(Simulator& sim, const LinkGainTable& gains,
              const CpmNoiseModel& noise, const MediumConfig& config,
              std::uint64_t seed);

  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

  /// Registers the MAC for `id`. Must be called for every node before use.
  void attach(NodeId id, MediumListener& listener);

  /// Optional bursty interferer (WiFi on the paper's channel 19).
  void set_interferer(WifiInterferer* interferer) { interferer_ = interferer; }

  /// Radio on/off (LPL wake/sleep). A radio that turns on mid-transmission
  /// misses that copy — exactly why LPL senders repeat.
  void set_listening(NodeId id, bool listening);
  [[nodiscard]] bool is_listening(NodeId id) const {
    return nodes_[id].listening;
  }

  /// Starts transmitting `frame` from `src`. The MAC must not call this again
  /// for `src` until its on_tx_done fires. Unicast/anycast frames include an
  /// acknowledgement window after the frame airtime.
  void transmit(NodeId src, Frame frame);

  /// True while `src` is mid-transmission (including the ack window).
  [[nodiscard]] bool transmitting(NodeId src) const {
    return nodes_[src].txing;
  }

  /// True while `id`'s radio is locked onto an in-flight frame.
  [[nodiscard]] bool receiving(NodeId id) const {
    return nodes_[id].locked_tx != 0;
  }

  /// Instantaneous channel energy at `id` (noise + all active transmissions
  /// + interferer) for CCA.
  [[nodiscard]] double channel_energy_dbm(NodeId id);

  /// Noise + interference only (no transmissions) — receiver noise floor.
  [[nodiscard]] double noise_dbm(NodeId id);

  /// Whether an acknowledgement window follows this frame (unicast frames
  /// and opportunistic control packets; plain broadcasts are unacked).
  [[nodiscard]] static bool frame_wants_ack(const Frame& frame) noexcept;

  using TransmitHook =
      std::function<void(NodeId src, const Frame& frame, SimTime airtime)>;
  /// Stats hook invoked once per transmitted copy. Replaces all hooks.
  void set_transmit_hook(TransmitHook hook) {
    transmit_hooks_.clear();
    if (hook) transmit_hooks_.push_back(std::move(hook));
  }
  /// Adds a hook alongside any existing ones (tracing + metrics coexist).
  void add_transmit_hook(TransmitHook hook) {
    if (hook) transmit_hooks_.push_back(std::move(hook));
  }

  [[nodiscard]] std::uint64_t total_transmissions() const noexcept {
    return total_transmissions_;
  }

  // --- fault injection (harness) -------------------------------------------
  /// Attenuation guaranteed to put any link below the reception cutoff —
  /// `add_link_loss_db(a, b, kBlackoutLossDb)` severs a link outright.
  static constexpr double kBlackoutLossDb = 500.0;

  /// Adds `extra_db` of attenuation on the (symmetric) link a<->b, on top of
  /// the static gain table. Offsets from multiple causes accumulate; pass a
  /// negative value to undo an earlier degradation. A link whose effective
  /// loss exceeds the neighbor cutoff stops locking receivers entirely.
  void add_link_loss_db(NodeId a, NodeId b, double extra_db);

  /// Current injected offset on a<->b (0 when unperturbed).
  [[nodiscard]] double link_loss_offset_db(NodeId a, NodeId b) const;

  /// Removes every injected link offset.
  void clear_link_faults() { link_offsets_.clear(); }

  /// Injects a constant noise source of `dbm` at `id`'s receiver (a jammer /
  /// co-located appliance); raises its noise floor for receptions, ack
  /// decoding and CCA alike.
  void set_extra_noise_dbm(NodeId id, double dbm);
  /// Removes the injected noise source at `id`.
  void clear_extra_noise(NodeId id);

  [[nodiscard]] const LinkGainTable& gains() const noexcept { return *gains_; }
  [[nodiscard]] double tx_power_dbm() const noexcept {
    return config_.tx_power_dbm;
  }

 private:
  struct ActiveTx {
    std::uint64_t id;
    NodeId src;
    Frame frame;
    SimTime start;
    SimTime end;
    bool done;
  };

  struct NodeState {
    MediumListener* listener = nullptr;
    bool listening = false;
    bool txing = false;
    std::uint64_t locked_tx = 0;  // 0 = not locked
    SimTime lock_start = 0;
  };

  void finish_tx(std::uint64_t tx_id);
  [[nodiscard]] ActiveTx* find_tx(std::uint64_t id);
  void prune_history();

  /// Received power tx->rx including injected link offsets.
  [[nodiscard]] double rssi_dbm(NodeId tx, NodeId rx) const;
  /// Static table loss plus injected offsets (the neighbor-cutoff test).
  [[nodiscard]] double effective_loss_db(NodeId tx, NodeId rx) const;
  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) noexcept {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (hi << 32) | lo;
  }
  /// Injected noise at `id` in mW (0 when none).
  [[nodiscard]] double extra_noise_mw(NodeId id) const noexcept {
    return id < extra_noise_mw_.size() ? extra_noise_mw_[id] : 0.0;
  }

  /// Mean interference power (mW) at `rx` over [start,end), excluding tx_id.
  [[nodiscard]] double interference_mw(NodeId rx, std::uint64_t tx_id,
                                       SimTime start, SimTime end);

  Simulator* sim_;
  const LinkGainTable* gains_;
  MediumConfig config_;
  std::vector<NodeState> nodes_;
  std::vector<CpmNoiseModel::Generator> noise_;
  std::vector<ActiveTx> txs_;  // ongoing + recently finished (for overlap)
  WifiInterferer* interferer_ = nullptr;
  Pcg32 rng_;
  std::uint64_t next_tx_id_ = 1;
  std::uint64_t total_transmissions_ = 0;
  std::vector<TransmitHook> transmit_hooks_;
  // Fault-injection state: sparse so the unperturbed hot path stays a single
  // empty() check per RSSI read.
  std::unordered_map<std::uint64_t, double> link_offsets_;
  std::vector<double> extra_noise_mw_;  // per node, 0 = no injected source
};

}  // namespace telea
