#include "radio/phy.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/dbm.hpp"

namespace telea {

double Cc2420Phy::tx_power_dbm(int pa_level) noexcept {
  struct Point {
    int level;
    double dbm;
  };
  // CC2420 datasheet table 9 (output power vs PA_LEVEL). Level 0 is not
  // specified; extend the curve's steep tail.
  static constexpr std::array<Point, 9> kTable{{{0, -32.0},
                                                {3, -25.0},
                                                {7, -15.0},
                                                {11, -10.0},
                                                {15, -7.0},
                                                {19, -5.0},
                                                {23, -3.0},
                                                {27, -1.0},
                                                {31, 0.0}}};
  const int level = std::clamp(pa_level, 0, 31);
  for (std::size_t i = 1; i < kTable.size(); ++i) {
    if (level <= kTable[i].level) {
      const auto& lo = kTable[i - 1];
      const auto& hi = kTable[i];
      const double t = static_cast<double>(level - lo.level) /
                       static_cast<double>(hi.level - lo.level);
      return lo.dbm + t * (hi.dbm - lo.dbm);
    }
  }
  return 0.0;
}

double Cc2420Phy::bit_error_rate(double sinr_db) noexcept {
  const double gamma = db_to_linear(sinr_db);
  // Binomial coefficients C(16, k) for k = 2..16.
  static constexpr std::array<double, 15> kBinom{
      120,  560,  1820, 4368, 8008, 11440, 12870, 11440,
      8008, 4368, 1820, 560,  120,  16,    1};
  double sum = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double term =
        kBinom[static_cast<std::size_t>(k - 2)] *
        std::exp(20.0 * gamma * (1.0 / static_cast<double>(k) - 1.0));
    sum += (k % 2 == 0) ? term : -term;
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * sum;
  return std::clamp(ber, 0.0, 0.5);
}

double Cc2420Phy::packet_reception_ratio(double sinr_db, double rssi_dbm,
                                         std::size_t mpdu_bytes) noexcept {
  if (rssi_dbm < kSensitivityDbm) return 0.0;
  const double ber = bit_error_rate(sinr_db);
  const double bits = static_cast<double>((kPhyHeaderBytes + mpdu_bytes) * 8);
  return std::pow(1.0 - ber, bits);
}

}  // namespace telea
