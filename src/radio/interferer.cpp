#include "radio/interferer.hpp"

namespace telea {

namespace {
constexpr double kOffFloorDbm = -120.0;
}

WifiInterferer::WifiInterferer(const WifiInterfererConfig& config,
                               std::size_t node_count, std::uint64_t seed)
    : config_(config), rng_(seed, /*stream=*/0x171F1ULL) {
  node_offset_db_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    node_offset_db_.push_back(rng_.normal(0.0, config.node_offset_sigma_db));
  }
  // Start in the off state with a pending first burst.
  next_toggle_ = static_cast<SimTime>(
      rng_.exponential(static_cast<double>(config.mean_off)));
}

void WifiInterferer::advance_to(SimTime t) {
  while (next_toggle_ <= t) {
    on_ = !on_;
    const double mean = static_cast<double>(on_ ? config_.mean_on
                                                : config_.mean_off);
    next_toggle_ += static_cast<SimTime>(rng_.exponential(mean)) + 1;
  }
}

double WifiInterferer::power_at(NodeId node, SimTime t) {
  if (!config_.enabled) return kOffFloorDbm;
  advance_to(t);
  if (!on_) return kOffFloorDbm;
  return config_.base_power_dbm + node_offset_db_[node];
}

double WifiInterferer::expected_duty() const noexcept {
  if (!config_.enabled) return 0.0;
  const double on = static_cast<double>(config_.mean_on);
  const double off = static_cast<double>(config_.mean_off);
  return on / (on + off);
}

}  // namespace telea
