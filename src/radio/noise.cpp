#include "radio/noise.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace telea {

std::vector<std::int8_t> generate_heavy_noise_trace(
    const SyntheticTraceConfig& config, std::uint64_t seed) {
  Pcg32 rng(seed, /*stream=*/0xC0FFEEULL);
  std::vector<std::int8_t> trace;
  trace.reserve(config.length);
  bool in_burst = false;
  for (std::size_t i = 0; i < config.length; ++i) {
    if (in_burst) {
      if (rng.chance(config.p_leave_burst)) in_burst = false;
    } else {
      if (rng.chance(config.p_enter_burst)) in_burst = true;
    }
    const double mean = in_burst ? config.burst_mean_dbm : config.floor_mean_dbm;
    const double sigma = in_burst ? config.burst_sigma_db : config.floor_sigma_db;
    const double v =
        std::clamp(rng.normal(mean, sigma), config.min_dbm, config.max_dbm);
    trace.push_back(static_cast<std::int8_t>(std::lround(v)));
  }
  return trace;
}

CpmNoiseModel::CpmNoiseModel(const std::vector<std::int8_t>& trace,
                             std::size_t history)
    : history_(std::max<std::size_t>(history, 1)) {
  assert(trace.size() > history_);
  marginal_ = trace;
  double sum = 0;
  for (std::int8_t v : trace) sum += v;
  marginal_mean_ = sum / static_cast<double>(trace.size());

  std::vector<std::int8_t> recent(history_);
  for (std::size_t i = history_; i < trace.size(); ++i) {
    std::copy(trace.begin() + static_cast<std::ptrdiff_t>(i - history_),
              trace.begin() + static_cast<std::ptrdiff_t>(i), recent.begin());
    table_[pattern_hash(recent)].push_back(trace[i]);
  }
}

std::uint64_t CpmNoiseModel::pattern_hash(
    const std::vector<std::int8_t>& recent) noexcept {
  // FNV-1a over the quantized readings; collisions merely merge similar
  // conditional distributions, which CPM tolerates by construction.
  std::uint64_t h = 1469598103934665603ULL;
  for (std::int8_t v : recent) {
    h ^= static_cast<std::uint8_t>(v);
    h *= 1099511628211ULL;
  }
  return h;
}

std::int8_t CpmNoiseModel::sample_next(const std::vector<std::int8_t>& recent,
                                       Pcg32& rng) const {
  const auto it = table_.find(pattern_hash(recent));
  if (it == table_.end() || it->second.empty()) return sample_marginal(rng);
  const auto& bag = it->second;
  return bag[rng.uniform(static_cast<std::uint32_t>(bag.size()))];
}

std::int8_t CpmNoiseModel::sample_marginal(Pcg32& rng) const {
  return marginal_[rng.uniform(static_cast<std::uint32_t>(marginal_.size()))];
}

CpmNoiseModel::Generator::Generator(const CpmNoiseModel& model,
                                    std::uint64_t seed, std::uint64_t stream)
    : model_(&model),
      rng_(seed, stream),
      recent_(model.history()),
      current_dbm_(model.marginal_mean_dbm()) {}

void CpmNoiseModel::Generator::advance_one() {
  const std::int8_t next = model_->sample_next(recent_, rng_);
  std::rotate(recent_.begin(), recent_.begin() + 1, recent_.end());
  recent_.back() = next;
  current_dbm_ = next;
}

double CpmNoiseModel::Generator::noise_dbm(SimTime t) {
  const SimTime target_step = t / kStep;
  if (!primed_) {
    // Seed the history from the marginal so the first readings are plausible.
    for (auto& r : recent_) r = model_->sample_marginal(rng_);
    current_dbm_ = recent_.back();
    current_step_ = target_step;
    primed_ = true;
    return current_dbm_;
  }
  if (target_step <= current_step_) return current_dbm_;
  SimTime gap = target_step - current_step_;
  if (gap > kMaxCatchUpSteps) {
    // Far-apart queries are decorrelated anyway: restart from the marginal
    // rather than walking the chain for an unbounded number of steps.
    for (auto& r : recent_) r = model_->sample_marginal(rng_);
    gap = 1;
  }
  for (SimTime i = 0; i < gap; ++i) advance_one();
  current_step_ = target_step;
  return current_dbm_;
}

}  // namespace telea
