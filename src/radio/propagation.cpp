#include "radio/propagation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace telea {

double distance_m(const Position& a, const Position& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

LinkGainTable::LinkGainTable(const std::vector<Position>& positions,
                             const PathLossConfig& config, std::uint64_t seed)
    : n_(positions.size()),
      loss_(n_ * n_, 0.0),
      neighbors_(n_) {
  Pcg32 rng(seed, /*stream=*/0x9e3779b97f4a7c15ULL);
  const double rho =
      config.symmetric_shadowing ? 1.0
                                 : std::clamp(config.shadowing_correlation,
                                              0.0, 1.0);
  const double resid = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double d =
          std::max(distance_m(positions[i], positions[j]), config.reference_m);
      const double pl = config.loss_at_reference_db +
                        10.0 * config.exponent *
                            std::log10(d / config.reference_m);
      // Correlated per-direction shadowing: one environmental component
      // shared by both directions plus small per-direction residuals.
      const double common = rng.normal(0.0, config.shadowing_sigma_db);
      const double fwd = rho * common +
                         resid * rng.normal(0.0, config.shadowing_sigma_db);
      const double rev = rho * common +
                         resid * rng.normal(0.0, config.shadowing_sigma_db);
      loss_[i * n_ + j] = std::max(pl + fwd, 0.0);
      loss_[j * n_ + i] = std::max(pl + rev, 0.0);
    }
  }
}

void LinkGainTable::build_neighbor_lists(double max_loss_db) {
  for (std::size_t i = 0; i < n_; ++i) {
    neighbors_[i].clear();
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      if (loss_[i * n_ + j] <= max_loss_db) {
        neighbors_[i].push_back(static_cast<NodeId>(j));
      }
    }
  }
}

}  // namespace telea
