#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace telea {

/// Bursty wideband interferer standing in for the WiFi traffic the paper
/// overlays on ZigBee channel 19 (Sec. IV-B2); channel 26 runs without it.
/// Modeled as a renewal on/off process (exponential holding times): while
/// "on", every sensor node sees an elevated in-band noise power. Per-node
/// static offsets capture unequal distances to the access point.
///
/// The process is evaluated lazily — queries advance a regenerative walk, so
/// no events are scheduled and cost is O(total toggles) across a run.
struct WifiInterfererConfig {
  double base_power_dbm = -72.0;   // in-band leakage during a burst
  double node_offset_sigma_db = 5.0;
  SimTime mean_on = 6 * kMillisecond;    // WiFi frame bursts
  SimTime mean_off = 18 * kMillisecond;  // idle gaps (~25% duty)
  bool enabled = true;
};

class WifiInterferer {
 public:
  WifiInterferer(const WifiInterfererConfig& config, std::size_t node_count,
                 std::uint64_t seed);

  /// In-band interference power (dBm) seen by `node` at time `t`, or a
  /// deeply negative floor when the interferer is off/disabled.
  /// Queries must be (weakly) monotone in `t` — true for event-driven use.
  [[nodiscard]] double power_at(NodeId node, SimTime t);

  /// Fraction of time the interferer is on, in expectation.
  [[nodiscard]] double expected_duty() const noexcept;

 private:
  void advance_to(SimTime t);

  WifiInterfererConfig config_;
  std::vector<double> node_offset_db_;
  Pcg32 rng_;
  bool on_ = false;
  SimTime next_toggle_ = 0;
};

}  // namespace telea
