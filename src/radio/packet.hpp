#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "util/bitstring.hpp"
#include "util/bloom.hpp"
#include "util/ids.hpp"

namespace telea {

/// 802.15.4 frame budget. The MPDU caps a frame at 127 bytes; the MAC
/// header (FCF + seq + addressing) and FCS footer leave 114 bytes of
/// payload for any single frame. Protocols that batch variable-length
/// content (allocation tables, group-control destination lists) must chunk
/// against kMaxPayloadBytes — telea_lint's wire-format rule audits every
/// wire struct's fixed fields against it.
inline constexpr std::size_t kMacHeaderBytes = 11;
inline constexpr std::size_t kMacFooterBytes = 2;
inline constexpr std::size_t kMaxMpduBytes = 127;
inline constexpr std::size_t kMaxPayloadBytes =
    kMaxMpduBytes - kMacHeaderBytes - kMacFooterBytes;

/// Wire formats for every protocol in the stack. These are pure data — the
/// protocol logic lives in src/net (CTP, Trickle), src/core (TeleAdjusting)
/// and src/proto (Drip, RPL). Keeping them together gives the radio medium a
/// single Frame type to carry and lets `wire_size_bytes` account airtime for
/// all of them consistently.
namespace msg {

/// CTP routing beacon (broadcast). Carries the TinyOS CTP routing frame plus
/// the TeleAdjusting piggyback the paper attaches to routing beacons: the
/// child's currently-claimed position under its parent, used for position
/// maintenance (Sec. III-B5) and allocation confirmation.
struct CtpBeacon {
  NodeId parent = kInvalidNode;
  std::uint16_t etx = 0xFFFF;  // path ETX to the sink, in 1/10 units
  std::uint8_t hops = 0xFF;    // hop distance to the sink
  std::uint8_t seqno = 0;
  bool pull = false;  // CTP "P" bit: request immediate beacons from neighbors

  // --- TeleAdjusting piggyback ---
  bool has_position_claim = false;
  std::uint32_t claimed_position = 0;  // position under `parent`
  std::uint8_t claimed_code_len = 0;   // valid bits of this node's path code
};

/// Compact in-band node health report, piggybacked on upward CTP traffic
/// (data and e2e acks) so the sink can maintain a staleness-aware picture of
/// the network without any dedicated telemetry packets. Exactly 8 bytes on
/// the wire (kHealthReportBytes); every field is pre-quantized to its wire
/// width so the struct *is* the wire format. See docs/OBSERVABILITY.md for
/// the byte layout and quantization rules.
struct HealthReport {
  std::uint8_t seqno = 0;         // wraps; freshest-wins via signed u8 delta
  std::uint8_t duty_permille = 0; // radio duty cycle, 0.1% units, sat. 25.5%
  std::uint8_t etx10 = 0xFF;      // link ETX to CTP parent, 1/10 units, sat.
  std::uint8_t code_len = 0;      // valid bits of this node's path code
  std::uint8_t queue_hwm = 0;     // hi nibble: MAC TX queue high-water mark,
                                  // lo nibble: CTP forward queue, each sat. 15
  std::uint8_t parent_epoch = 0;  // parent-change count mod 256
  std::uint16_t energy_mj = 0;    // estimated energy spent, mJ, saturating
};

/// Wire size of one piggybacked HealthReport.
inline constexpr std::size_t kHealthReportBytes = 8;

/// CTP data frame (unicast, hop-by-hop to the current parent). Also carries
/// TeleAdjusting end-to-end acknowledgements, which the paper transmits "as a
/// data packet" (Sec. III-C5).
struct CtpData {
  NodeId origin = kInvalidNode;
  std::uint8_t origin_seqno = 0;
  std::uint8_t thl = 0;        // time-has-lived (hop counter)
  std::uint16_t etx = 0xFFFF;  // sender's path ETX, for datapath validation
  bool is_control_ack = false;  // TeleAdjusting e2e ack riding the data plane
  std::uint32_t control_seqno = 0;  // which control packet is acknowledged
  // --- in-band code report (Sec. III-A: "such code will be reported to the
  // remote controller") — piggybacked on collection traffic when enabled.
  bool has_code_report = false;
  BitString reported_code;
  // --- in-band health telemetry — piggybacked by the origin only (never
  // attached or rewritten on forwarding hops), rate-limited per node.
  bool has_health = false;
  HealthReport health;
};

/// One child-table entry carried in a TeleAdjusting beacon: the deterministic
/// position allocation broadcast of Algorithm 1 / Table I.
struct AllocationEntry {
  NodeId child = kInvalidNode;
  std::uint32_t position = 0;
  bool confirmed = false;
};

/// TeleAdjusting beacon (broadcast): a parent publishes its own path code,
/// the size of the bit space it provides for children, and the full
/// <child, position, flag> allocation table (Algorithm 1, line 10).
struct TeleBeacon {
  BitString parent_code;             // the sender's (parent's) valid path code
  std::uint8_t space_bits = 0;       // π: bits provided for child positions
  bool space_extended = false;       // notification of a space extension
  std::vector<AllocationEntry> entries;
};

/// Position request (unicast child → parent, Sec. III-B4): sent when a node
/// was never allocated a position or missed its parent's TeleAdjusting beacon.
struct PositionRequest {
  std::uint8_t dummy = 0;
};

/// Allocation acknowledgement (unicast parent → child, Sec. III-B4): the
/// parent answers a position request or repairs an inconsistent claim.
struct AllocationAck {
  std::uint32_t position = 0;
  std::uint8_t space_bits = 0;
  BitString parent_code;
};

/// Confirmation frame (unicast child → parent, Algorithm 3 lines 4/6):
/// confirms receipt of an allocated position.
struct ConfirmFrame {
  std::uint32_t position = 0;
};

/// How a TeleAdjusting control packet is being moved on this hop.
enum class ControlMode : std::uint8_t {
  kOpportunistic,  // link-layer anycast along the encoded path (Sec. III-C1/2)
  kDirect,         // deterministic unicast (Re-Tele detour final hop, III-C4)
};

/// The remote-control packet itself (Sec. III-C). Overhearing nodes decide
/// whether to relay by prefix-matching `dest_code` against their own code and
/// comparing progress with (`expected_relay`, `expected_relay_code_len`).
struct ControlPacket {
  NodeId dest = kInvalidNode;
  BitString dest_code;
  NodeId expected_relay = kInvalidNode;
  std::uint8_t expected_relay_code_len = 0;
  std::uint32_t seqno = 0;        // sink-assigned, identifies the command
  std::uint16_t command = 0;      // opaque control parameter block id
  ControlMode mode = ControlMode::kOpportunistic;
  // Re-Tele detour (Sec. III-C4): when set, the packet is first routed to
  // `detour_via` (a neighbor of the destination) which then delivers directly.
  NodeId detour_via = kInvalidNode;
  BitString detour_code;
  std::uint8_t hops_so_far = 0;   // accumulated transmission hops (for Fig. 8)
};

/// Backtracking feedback (Sec. III-C3): a relay that cannot make downward
/// progress returns the control packet to its upstream relay.
struct FeedbackPacket {
  ControlPacket packet;
  NodeId unreachable_via = kInvalidNode;  // the neighbor that proved dead
};

/// One destination of a group (one-to-many) control packet.
struct GroupDest {
  NodeId dest = kInvalidNode;
  BitString code;
};

/// One-to-many control packet — the extension the paper claims TeleAdjusting
/// "can be easily extended to" (Sec. I). A single packet carries every
/// destination whose encoded path still shares the current segment; relays
/// split it into per-branch sub-packets where the paths diverge, so shared
/// segments are paid for once. Claiming/anycast semantics follow the lead
/// destination (`dests[0]`).
struct GroupControlPacket {
  std::vector<GroupDest> dests;
  NodeId expected_relay = kInvalidNode;
  std::uint8_t expected_relay_code_len = 0;
  std::uint32_t group_seqno = 0;
  std::uint16_t command = 0;
  std::uint8_t hops_so_far = 0;
};

/// Drip dissemination message (broadcast, Trickle-paced). `key`/`version`
/// implement the standard Drip consistency model; the control payload is the
/// same command a TeleAdjusting ControlPacket would carry, addressed to
/// `dest` (every node rebroadcasts, only `dest` consumes).
struct DripMsg {
  std::uint16_t key = 0;
  std::uint32_t version = 0;
  NodeId dest = kInvalidNode;
  std::uint16_t command = 0;
  std::uint8_t hops_so_far = 0;
};

/// RPL DAO. Storing mode (the paper's baseline): unicast child → preferred
/// parent, advertising the sender plus every destination in the sender's
/// downward table so ancestors install routes. Non-storing mode (RFC 6550
/// §9.7): the DAO travels to the root carrying the (origin, transit parent)
/// pair; only the root keeps topology.
struct RplDao {
  std::uint8_t dao_seqno = 0;
  std::vector<NodeId> targets;
  // --- non-storing fields ---
  bool non_storing = false;
  NodeId origin = kInvalidNode;         // whose parent link this describes
  NodeId transit_parent = kInvalidNode; // origin's preferred parent
};

/// ORPL sub-DODAG announcement (broadcast): the sender's Bloom filter over
/// itself plus all its descendants, with the sender's routing cost so
/// receivers know the direction (Duquennoy et al., SenSys'13 — the
/// related-work baseline the paper critiques for bloom false positives).
struct OrplAnnounce {
  OrplBloom members;
  std::uint16_t etx10 = 0xFFFF;  // the sender's upward routing cost
  std::uint8_t seqno = 0;
};

/// ORPL downward data packet: link-layer anycast; any deeper neighbor whose
/// member filter contains the destination claims it.
struct OrplData {
  NodeId dest = kInvalidNode;
  std::uint32_t seqno = 0;
  std::uint16_t command = 0;
  std::uint16_t sender_etx10 = 0xFFFF;  // claimants must be deeper than this
  std::uint8_t hops_so_far = 0;
};

/// RPL downward data packet. Storing mode: unicast hop-by-hop via stored
/// routes. Non-storing mode: carries the full source route computed at the
/// root (RFC 6554-style routing header).
struct RplData {
  NodeId dest = kInvalidNode;
  std::uint32_t seqno = 0;
  std::uint16_t command = 0;
  std::uint8_t hops_so_far = 0;
  // --- non-storing source route (empty in storing mode) ---
  std::vector<NodeId> source_route;  // sink-adjacent first, dest last
  std::uint8_t route_index = 0;      // next hop position in source_route
};

using Payload = std::variant<CtpBeacon, CtpData, TeleBeacon, PositionRequest,
                             AllocationAck, ConfirmFrame, ControlPacket,
                             FeedbackPacket, GroupControlPacket, DripMsg,
                             RplDao, RplData, OrplAnnounce, OrplData>;

}  // namespace msg

/// A link-layer frame: source, link destination (kBroadcastNode for
/// broadcast / anycast), and one protocol payload.
struct Frame {
  NodeId src = kInvalidNode;
  NodeId dst = kBroadcastNode;
  /// Per-send-operation sequence number stamped by the sending MAC. All LPL
  /// copies of one logical frame share it, so receivers can suppress
  /// duplicates while still re-acknowledging them.
  std::uint32_t link_seq = 0;
  msg::Payload payload;

  [[nodiscard]] bool is_broadcast() const noexcept {
    return dst == kBroadcastNode;
  }
};

/// Serialized size of a frame in bytes, used for airtime and PRR-vs-length.
/// Counts the 802.15.4 MPDU (11-byte header + payload + 2-byte FCS); the
/// PHY adds its synchronization header separately.
[[nodiscard]] std::size_t wire_size_bytes(const Frame& frame) noexcept;

}  // namespace telea
