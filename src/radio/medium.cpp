#include "radio/medium.hpp"

#include <algorithm>
#include <cassert>

#include "radio/phy.hpp"
#include "util/dbm.hpp"
#include "util/logging.hpp"

namespace telea {

RadioMedium::RadioMedium(Simulator& sim, const LinkGainTable& gains,
                         const CpmNoiseModel& noise, const MediumConfig& config,
                         std::uint64_t seed)
    : sim_(&sim),
      gains_(&gains),
      config_(config),
      nodes_(gains.node_count()),
      rng_(seed, /*stream=*/0x4D454449ULL) {
  noise_.reserve(gains.node_count());
  for (std::size_t i = 0; i < gains.node_count(); ++i) {
    noise_.push_back(noise.make_generator(seed ^ (i * 0x9E3779B97F4A7C15ULL),
                                          /*stream=*/i + 1));
  }
  if (config_.max_loss_db <= 0.0) {
    config_.max_loss_db = config_.tx_power_dbm - Cc2420Phy::kSensitivityDbm +
                          config_.cutoff_margin_db;
  }
  // The table is shared between experiments; (re)build its neighbor lists
  // for this medium's cutoff.
  const_cast<LinkGainTable*>(gains_)->build_neighbor_lists(config_.max_loss_db);
}

void RadioMedium::attach(NodeId id, MediumListener& listener) {
  assert(id < nodes_.size());
  nodes_[id].listener = &listener;
}

double RadioMedium::effective_loss_db(NodeId tx, NodeId rx) const {
  double loss = gains_->loss_db(tx, rx);
  if (!link_offsets_.empty()) {
    const auto it = link_offsets_.find(link_key(tx, rx));
    if (it != link_offsets_.end()) loss += it->second;
  }
  return loss;
}

double RadioMedium::rssi_dbm(NodeId tx, NodeId rx) const {
  double rssi = gains_->rssi_dbm(tx, rx, config_.tx_power_dbm);
  if (!link_offsets_.empty()) {
    const auto it = link_offsets_.find(link_key(tx, rx));
    if (it != link_offsets_.end()) rssi -= it->second;
  }
  return rssi;
}

void RadioMedium::add_link_loss_db(NodeId a, NodeId b, double extra_db) {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) return;
  const double offset = (link_offsets_[link_key(a, b)] += extra_db);
  // Drop neutralized entries so the hot-path empty() check recovers.
  if (offset > -1e-9 && offset < 1e-9) link_offsets_.erase(link_key(a, b));
}

double RadioMedium::link_loss_offset_db(NodeId a, NodeId b) const {
  const auto it = link_offsets_.find(link_key(a, b));
  return it == link_offsets_.end() ? 0.0 : it->second;
}

void RadioMedium::set_extra_noise_dbm(NodeId id, double dbm) {
  if (id >= nodes_.size()) return;
  if (extra_noise_mw_.empty()) extra_noise_mw_.assign(nodes_.size(), 0.0);
  extra_noise_mw_[id] = dbm_to_mw(dbm);
}

void RadioMedium::clear_extra_noise(NodeId id) {
  if (id < extra_noise_mw_.size()) extra_noise_mw_[id] = 0.0;
}

void RadioMedium::set_listening(NodeId id, bool listening) {
  NodeState& st = nodes_[id];
  if (st.listening == listening) return;
  st.listening = listening;
  if (!listening) st.locked_tx = 0;  // sleeping aborts any in-flight reception
}

bool RadioMedium::frame_wants_ack(const Frame& frame) noexcept {
  if (!frame.is_broadcast()) return true;
  if (const auto* cp = std::get_if<msg::ControlPacket>(&frame.payload)) {
    // Opportunistic control packets are link-layer anycast: broadcast
    // addressing, but any eligible overhearer claims them with an ack.
    return cp->mode == msg::ControlMode::kOpportunistic;
  }
  // Group control packets and ORPL downward data are always anycast.
  return std::holds_alternative<msg::GroupControlPacket>(frame.payload) ||
         std::holds_alternative<msg::OrplData>(frame.payload);
}

void RadioMedium::transmit(NodeId src, Frame frame) {
  NodeState& st = nodes_[src];
  assert(st.listener != nullptr && "transmit() before attach()");
  assert(!st.txing && "MAC started a transmission while one is in flight");
  st.txing = true;
  st.locked_tx = 0;  // transmitting aborts any in-flight reception

  const std::size_t mpdu = wire_size_bytes(frame);
  const SimTime airtime = Cc2420Phy::airtime(mpdu);
  const SimTime start = sim_->now();
  const SimTime end = start + airtime;
  const std::uint64_t id = next_tx_id_++;

  ++total_transmissions_;
  for (const auto& hook : transmit_hooks_) hook(src, frame, airtime);

  // Lock every in-range idle listener to this transmission. Nodes already
  // locked to an earlier frame keep that lock; this frame only interferes.
  for (NodeId nb : gains_->neighbors_within(src)) {
    NodeState& rx = nodes_[nb];
    if (!rx.listening || rx.txing || rx.locked_tx != 0) continue;
    // An injected link fault can push a statically-in-range link below the
    // cutoff: such a receiver never even locks onto the preamble.
    if (!link_offsets_.empty() &&
        effective_loss_db(src, nb) > config_.max_loss_db) {
      continue;
    }
    rx.locked_tx = id;
    rx.lock_start = start;
  }

  txs_.push_back(ActiveTx{id, src, std::move(frame), start, end, false});
  sim_->schedule_at(end, [this, id] { finish_tx(id); });
}

RadioMedium::ActiveTx* RadioMedium::find_tx(std::uint64_t id) {
  for (auto& tx : txs_) {
    if (tx.id == id) return &tx;
  }
  return nullptr;
}

double RadioMedium::interference_mw(NodeId rx, std::uint64_t tx_id,
                                    SimTime start, SimTime end) {
  double mw = 0.0;
  const double duration = static_cast<double>(end - start);
  if (duration <= 0) return 0.0;
  for (const auto& other : txs_) {
    if (other.id == tx_id || other.src == rx) continue;
    const SimTime ov_start = std::max(start, other.start);
    const SimTime ov_end = std::min(end, other.end);
    if (ov_end <= ov_start) continue;
    const double frac =
        static_cast<double>(ov_end - ov_start) / duration;
    mw += dbm_to_mw(rssi_dbm(other.src, rx)) * frac;
  }
  return mw;
}

void RadioMedium::finish_tx(std::uint64_t tx_id) {
  ActiveTx* tx = find_tx(tx_id);
  assert(tx != nullptr);
  tx->done = true;
  const SimTime now = sim_->now();
  const std::size_t mpdu = wire_size_bytes(tx->frame);

  // Resolve reception at every receiver locked to this transmission.
  struct Acker {
    NodeId id;
    double rssi_at_src_dbm;
  };
  std::vector<Acker> ackers;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& rx = nodes_[i];
    if (rx.locked_tx != tx_id) continue;
    rx.locked_tx = 0;
    const auto rx_id = static_cast<NodeId>(i);

    const double signal_dbm = rssi_dbm(tx->src, rx_id);
    double noise_mw = dbm_to_mw(noise_[i].noise_dbm(now)) +
                      extra_noise_mw(rx_id);
    if (interferer_ != nullptr) {
      noise_mw += dbm_to_mw(interferer_->power_at(rx_id, now));
    }
    const double interf_mw =
        interference_mw(rx_id, tx_id, tx->start, tx->end);
    const double sinr = signal_dbm - mw_to_dbm(noise_mw + interf_mw);
    // Capture model: interference-limited receptions need to clear the
    // co-channel rejection threshold (see MediumConfig).
    if (interf_mw > noise_mw && sinr < config_.capture_threshold_db) continue;
    const double prr =
        Cc2420Phy::packet_reception_ratio(sinr, signal_dbm, mpdu);
    if (!rng_.chance(prr)) continue;

    const AckDecision decision =
        rx.listener->on_frame(tx->frame, signal_dbm);
    if (decision == AckDecision::kAcceptAndAck) {
      ackers.push_back(Acker{rx_id, rssi_dbm(rx_id, tx->src)});
    }
  }

  const NodeId src = tx->src;
  if (!frame_wants_ack(tx->frame)) {
    nodes_[src].txing = false;
    nodes_[src].listener->on_tx_done(false, kInvalidNode);
    prune_history();
    return;
  }

  // Acknowledgement window: turnaround + ack airtime. Multiple simultaneous
  // ackers collide; the strongest captures only if it clears the sum of the
  // others by the capture threshold, then must still pass the PRR draw.
  bool acked = false;
  NodeId acker_id = kInvalidNode;
  if (!ackers.empty()) {
    auto strongest = std::max_element(
        ackers.begin(), ackers.end(), [](const Acker& a, const Acker& b) {
          return a.rssi_at_src_dbm < b.rssi_at_src_dbm;
        });
    double others_mw = 0.0;
    for (const auto& a : ackers) {
      if (a.id != strongest->id) others_mw += dbm_to_mw(a.rssi_at_src_dbm);
    }
    double floor_mw = dbm_to_mw(noise_[src].noise_dbm(now)) +
                      extra_noise_mw(src);
    if (interferer_ != nullptr) {
      floor_mw += dbm_to_mw(interferer_->power_at(src, now));
    }
    const bool captured =
        others_mw <= 0.0 ||
        strongest->rssi_at_src_dbm - mw_to_dbm(others_mw) >=
            config_.ack_capture_db;
    if (captured) {
      const double sinr =
          strongest->rssi_at_src_dbm - mw_to_dbm(floor_mw + others_mw);
      const double prr = Cc2420Phy::packet_reception_ratio(
          sinr, strongest->rssi_at_src_dbm, Cc2420Phy::kAckMpduBytes);
      if (rng_.chance(prr)) {
        acked = true;
        acker_id = strongest->id;
      }
    }
  }

  const SimTime ack_window =
      Cc2420Phy::kTurnaroundTime + Cc2420Phy::ack_airtime();
  sim_->schedule_in(ack_window, [this, src, acked, acker_id] {
    nodes_[src].txing = false;
    nodes_[src].listener->on_tx_done(acked, acker_id);
  });
  prune_history();
}

void RadioMedium::prune_history() {
  // Keep finished transmissions long enough that any overlapping reception
  // still in flight can integrate their interference.
  constexpr SimTime kGrace = 50 * kMillisecond;
  const SimTime now = sim_->now();
  std::erase_if(txs_, [now](const ActiveTx& tx) {
    return tx.done && tx.end + kGrace < now;
  });
}

double RadioMedium::noise_dbm(NodeId id) {
  double mw = dbm_to_mw(noise_[id].noise_dbm(sim_->now())) +
              extra_noise_mw(id);
  if (interferer_ != nullptr) {
    mw += dbm_to_mw(interferer_->power_at(id, sim_->now()));
  }
  return mw_to_dbm(mw);
}

double RadioMedium::channel_energy_dbm(NodeId id) {
  double mw = dbm_to_mw(noise_dbm(id));
  for (const auto& tx : txs_) {
    if (tx.done || tx.src == id) continue;
    mw += dbm_to_mw(rssi_dbm(tx.src, id));
  }
  return mw_to_dbm(mw);
}

}  // namespace telea
