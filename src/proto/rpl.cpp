#include "proto/rpl.hpp"

#include "util/field.hpp"

#include <algorithm>

namespace telea {

RplNode::RplNode(Simulator& sim, LplMac& mac, CtpNode& ctp,
                 const RplConfig& config)
    : sim_(&sim),
      mac_(&mac),
      ctp_(&ctp),
      config_(config),
      dao_timer_(sim),
      trigger_timer_(sim) {
  dao_timer_.set_callback([this] { send_dao(); });
  trigger_timer_.set_callback([this] { send_dao(); });
}

void RplNode::start() {
  if (!ctp_->is_root()) {
    // Random phase: synchronized periodic DAOs across the network would
    // collide every interval.
    Pcg32 rng(0xDA0ULL + mac_->id(), mac_->id());
    const SimTime phase = rng.uniform(
        static_cast<std::uint32_t>(std::min<SimTime>(config_.dao_interval,
                                                     0xFFFFFFFFull)));
    dao_timer_.start_periodic_at(phase + 1, config_.dao_interval);
    // First DAO goes out as soon as a parent exists; the periodic timer
    // covers the steady state, the trigger covers route formation.
    trigger_timer_.start_one_shot(config_.dao_trigger_delay);
  }
}

void RplNode::on_parent_changed() {
  if (!ctp_->is_root()) {
    trigger_timer_.start_one_shot(config_.dao_trigger_delay);
  }
}

void RplNode::send_dao() {
  const NodeId parent = ctp_->parent();
  if (parent == kInvalidNode) {
    trigger_timer_.start_one_shot(config_.dao_trigger_delay);
    return;
  }
  expire_routes();

  std::vector<msg::RplDao> daos;
  if (config_.mode == RplMode::kNonStoring) {
    // Non-storing: advertise only our own parent link; relays forward the
    // DAO up to the root, which keeps the whole topology (RFC 6550 9.7).
    msg::RplDao dao;
    dao.dao_seqno = ++dao_seqno_;
    dao.non_storing = true;
    dao.origin = mac_->id();
    dao.transit_parent = parent;
    daos.push_back(std::move(dao));
  } else {
    // Storing mode: the full target set may exceed the 127-byte MPDU for a
    // sink-adjacent node with a deep subtree — chunk it across frames.
    constexpr std::size_t kTargetsPerDao = 40;
    std::vector<NodeId> targets;
    targets.push_back(mac_->id());
    for (const auto& r : routes_) targets.push_back(r.target);
    for (std::size_t off = 0; off < targets.size(); off += kTargetsPerDao) {
      msg::RplDao dao;
      dao.dao_seqno = ++dao_seqno_;
      dao.targets.assign(
          targets.begin() + static_cast<std::ptrdiff_t>(off),
          targets.begin() + static_cast<std::ptrdiff_t>(
                                std::min(off + kTargetsPerDao,
                                         targets.size())));
      daos.push_back(std::move(dao));
    }
  }

  for (auto& dao : daos) {
    Frame frame;
    frame.dst = parent;
    frame.payload = std::move(dao);
    mac_->send(std::move(frame), [this, parent](const SendResult& result) {
      // DAO outcomes are link probes too; a run of failures to the parent
      // triggers reselection (RPL's parent probing) and a prompt retry.
      ctp_->estimator().on_data_tx(parent, result.success);
      if (result.success) {
        dao_failures_ = 0;
        return;
      }
      if (parent == ctp_->parent() && ++dao_failures_ >= 3) {
        dao_failures_ = 0;
        ctp_->report_parent_trouble();
      }
      trigger_timer_.start_one_shot(config_.dao_trigger_delay);
    });
  }
}

AckDecision RplNode::handle_dao(NodeId from, const msg::RplDao& dao,
                                bool for_me) {
  if (!for_me) return AckDecision::kIgnore;
  const SimTime now = sim_->now();

  if (dao.non_storing) {
    if (!ctp_->is_root()) {
      // Relay the DAO toward the root without storing anything.
      if (ctp_->parent() != kInvalidNode) {
        Frame up;
        up.dst = ctp_->parent();
        up.payload = dao;
        mac_->send(std::move(up), nullptr);
      }
      return AckDecision::kAcceptAndAck;
    }
    // Root: record / refresh the origin's parent link.
    auto it = std::find_if(topology_.begin(), topology_.end(),
                           [&dao](const ParentLink& l) {
                             return l.origin == dao.origin;
                           });
    if (it == topology_.end()) {
      topology_.push_back(ParentLink{dao.origin, dao.transit_parent, now});
    } else {
      it->parent = dao.transit_parent;
      it->refreshed = now;
    }
    return AckDecision::kAcceptAndAck;
  }

  bool grew = false;
  for (NodeId target : dao.targets) {
    if (target == mac_->id()) continue;
    auto it = std::find_if(routes_.begin(), routes_.end(),
                           [target](const Route& r) {
                             return r.target == target;
                           });
    if (it == routes_.end()) {
      routes_.push_back(Route{target, from, now});
      grew = true;
    } else {
      if (it->next_hop != from) grew = true;
      it->next_hop = from;
      it->refreshed = now;
    }
  }
  // Propagate new reachability up the DODAG promptly (storing mode).
  if (grew && !ctp_->is_root()) {
    trigger_timer_.start_one_shot(config_.dao_trigger_delay);
  }
  return AckDecision::kAcceptAndAck;
}

void RplNode::expire_routes() {
  const SimTime now = sim_->now();
  std::erase_if(routes_, [this, now](const Route& r) {
    return r.refreshed + config_.route_lifetime < now;
  });
}

const RplNode::Route* RplNode::find_route(NodeId target) const {
  for (const auto& r : routes_) {
    if (r.target == target) return &r;
  }
  return nullptr;
}

std::vector<NodeId> RplNode::compute_source_route(NodeId dest) const {
  // Walk the recorded parent links from the destination up to the root,
  // then reverse into first-hop-first order.
  std::vector<NodeId> up;
  const SimTime now = sim_->now();
  NodeId cur = dest;
  for (std::size_t guard = 0; guard <= topology_.size(); ++guard) {
    up.push_back(cur);
    const auto it = std::find_if(topology_.begin(), topology_.end(),
                                 [cur](const ParentLink& l) {
                                   return l.origin == cur;
                                 });
    if (it == topology_.end() ||
        it->refreshed + config_.route_lifetime < now) {
      return {};  // hole or stale link: no route
    }
    if (it->parent == kSinkNode) {
      std::reverse(up.begin(), up.end());
      return up;
    }
    cur = it->parent;
  }
  return {};  // loop in the recorded topology
}

bool RplNode::has_route_to(NodeId dest) const {
  if (config_.mode == RplMode::kNonStoring) {
    return !compute_source_route(dest).empty();
  }
  const Route* r = find_route(dest);
  return r != nullptr && r->refreshed + config_.route_lifetime >= sim_->now();
}

bool RplNode::send_downward(NodeId dest, std::uint16_t command,
                            std::uint32_t seqno) {
  msg::RplData data;
  data.dest = dest;
  data.command = command;
  data.seqno = seqno;
  data.hops_so_far = 0;
  if (config_.mode == RplMode::kNonStoring) {
    data.source_route = compute_source_route(dest);
    if (data.source_route.empty()) return false;
    data.route_index = 0;
  } else {
    expire_routes();
    if (find_route(dest) == nullptr) return false;
  }
  enqueue(data);
  return true;
}

AckDecision RplNode::handle_data(NodeId from, const msg::RplData& data,
                                 bool for_me) {
  (void)from;
  if (!for_me) return AckDecision::kIgnore;
  // Duplicate suppression: a hop whose acknowledgement was lost retransmits
  // with a fresh link-layer sequence number, so the MAC's copy filter does
  // not catch it — filter on the control seqno here.
  const bool dup = std::find(seen_.begin(), seen_.end(), data.seqno) !=
                   seen_.end();
  if (dup) return AckDecision::kAcceptAndAck;
  seen_.push_back(data.seqno);
  while (seen_.size() > 32) seen_.pop_front();

  if (data.dest == mac_->id()) {
    if (on_delivered) on_delivered(data);
    return AckDecision::kAcceptAndAck;
  }
  if (!data.source_route.empty()) {
    // Non-storing: our position must exist in the routing header.
    const auto idx = static_cast<std::size_t>(data.route_index);
    if (idx >= data.source_route.size() ||
        data.source_route[idx] != mac_->id() ||
        idx + 1 >= data.source_route.size()) {
      if (on_drop) on_drop(data.seqno);
      return AckDecision::kAcceptAndAck;
    }
  } else if (find_route(data.dest) == nullptr) {
    // Stored-route hole: deterministic forwarding has nowhere to go.
    if (on_drop) on_drop(data.seqno);
    return AckDecision::kAcceptAndAck;  // ack; the drop is ours to own
  }
  if (queue_.size() >= config_.queue_limit) return AckDecision::kIgnore;
  if (on_relayed) on_relayed(data);
  enqueue(data);
  return AckDecision::kAcceptAndAck;
}

void RplNode::enqueue(msg::RplData data) {
  data.hops_so_far = field::u8(data.hops_so_far + 1);
  if (!data.source_route.empty() && !ctp_->is_root()) {
    // We are source_route[route_index]; the next hop is the entry after us.
    data.route_index = field::u8(data.route_index + 1);
  }
  queue_.push_back(data);
  forward_next();
}

void RplNode::forward_next() {
  if (forwarding_ || queue_.empty()) return;
  expire_routes();
  const msg::RplData& data = queue_.front();
  NodeId next_hop = kInvalidNode;
  if (!data.source_route.empty()) {
    const auto idx = static_cast<std::size_t>(data.route_index);
    if (idx < data.source_route.size()) next_hop = data.source_route[idx];
  } else if (const Route* route = find_route(data.dest); route != nullptr) {
    next_hop = route->next_hop;
  }
  if (next_hop == kInvalidNode) {
    if (on_drop) on_drop(data.seqno);
    queue_.pop_front();
    forward_next();
    return;
  }
  forwarding_ = true;

  Frame frame;
  frame.dst = next_hop;
  frame.payload = data;
  const bool queued =
      mac_->send(std::move(frame), [this](const SendResult& result) {
        forwarding_ = false;
        if (queue_.empty()) return;
        if (result.success) {
          front_attempts_ = 0;
          queue_.pop_front();
        } else {
          ++front_attempts_;
          if (front_attempts_ >= config_.data_retx) {
            if (on_drop) on_drop(queue_.front().seqno);
            queue_.pop_front();
            front_attempts_ = 0;
          }
        }
        forward_next();
      });
  if (!queued) {
    forwarding_ = false;
    sim_->schedule_in(kSecond, [this] { forward_next(); });
  }
}

}  // namespace telea
