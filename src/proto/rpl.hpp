#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mac/lpl.hpp"
#include "net/ctp.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace telea {

/// RFC 6550 mode of operation for downward routing.
enum class RplMode : std::uint8_t {
  kStoring,     // every node stores routes for its sub-DODAG (paper baseline)
  kNonStoring,  // only the root stores topology; packets carry source routes
};

struct RplConfig {
  RplMode mode = RplMode::kStoring;
  SimTime dao_interval = 60 * kSecond;   // periodic DAO refresh
  SimTime dao_trigger_delay = 5 * kSecond;  // debounce for triggered DAOs
  /// Stale-route expiry. RFC 6550 deployments use generous lifetimes (tens
  /// of minutes); short lifetimes lose routes to a couple of missed DAO
  /// chains, long ones keep stale next-hops alive after churn — the
  /// deterministic-forwarding failure mode Fig. 7 punishes.
  SimTime route_lifetime = 15 * 60 * kSecond;
  unsigned data_retx = 8;  // link-layer send ops per hop before drop
  std::size_t queue_limit = 12;
};

/// RPL downward routing, storing mode (RFC 6550) — the paper's *structured*
/// baseline (Sec. IV-B): "we only use the downward part of RPL". The DODAG
/// is the CTP tree (RPL's design "is largely based on CTP"); each node
/// advertises itself and its stored targets to its preferred parent with
/// DAOs, ancestors install target->child routes, and downward data follows
/// the stored tables with deterministic unicast per hop.
///
/// Its weakness — the one the paper's Fig. 7 exposes — is intrinsic: when
/// links churn, the stored tables go stale and deterministic forwarding
/// drops packets that TeleAdjusting's anycast would have rescued.
class RplNode {
 public:
  RplNode(Simulator& sim, LplMac& mac, CtpNode& ctp, const RplConfig& config);

  RplNode(const RplNode&) = delete;
  RplNode& operator=(const RplNode&) = delete;

  /// Starts DAO timers. Call at node boot.
  void start();

  /// Call when CTP changes this node's parent so a triggered DAO refreshes
  /// the new ancestor chain.
  void on_parent_changed();

  // --- dispatcher entries -----------------------------------------------------
  AckDecision handle_dao(NodeId from, const msg::RplDao& dao, bool for_me);
  AckDecision handle_data(NodeId from, const msg::RplData& data, bool for_me);

  /// Root-side: sends a command down to `dest`. Returns false when no stored
  /// route exists (counted as an immediate routing failure).
  bool send_downward(NodeId dest, std::uint16_t command, std::uint32_t seqno);

  /// Fired at the destination when a downward packet arrives.
  std::function<void(const msg::RplData&)> on_delivered;
  /// Fired at every relay that accepts a downward packet — stats hook for
  /// the accumulated-transmission-hop-count figure (Fig. 8c).
  std::function<void(const msg::RplData&)> on_relayed;
  /// Fired at whichever hop drops the packet (no route / link exhausted).
  std::function<void(std::uint32_t seqno)> on_drop;

  // --- introspection ------------------------------------------------------------
  [[nodiscard]] bool has_route_to(NodeId dest) const;
  [[nodiscard]] std::size_t route_count() const noexcept {
    return routes_.size();
  }
  [[nodiscard]] RplMode mode() const noexcept { return config_.mode; }

  /// Non-storing root: the source route (first hop .. dest) to `dest`, or
  /// empty when the topology view cannot reach it.
  [[nodiscard]] std::vector<NodeId> compute_source_route(NodeId dest) const;

 private:
  struct Route {
    NodeId target;
    NodeId next_hop;
    SimTime refreshed;
  };

  void send_dao();
  void expire_routes();
  [[nodiscard]] const Route* find_route(NodeId target) const;
  void enqueue(msg::RplData data);
  void forward_next();

  Simulator* sim_;
  LplMac* mac_;
  CtpNode* ctp_;
  RplConfig config_;

  std::vector<Route> routes_;
  // Non-storing root state: origin -> (transit parent, refresh time).
  struct ParentLink {
    NodeId origin;
    NodeId parent;
    SimTime refreshed;
  };
  std::vector<ParentLink> topology_;
  std::uint8_t dao_seqno_ = 0;
  unsigned dao_failures_ = 0;
  Timer dao_timer_;
  Timer trigger_timer_;

  std::deque<msg::RplData> queue_;
  std::deque<std::uint32_t> seen_;  // recent downward seqnos (dedup)
  bool forwarding_ = false;
  unsigned front_attempts_ = 0;
};

}  // namespace telea
