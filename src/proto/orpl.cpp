#include "proto/orpl.hpp"

#include "util/field.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace telea {

OrplNode::OrplNode(Simulator& sim, LplMac& mac, CtpNode& ctp,
                   const OrplConfig& config)
    : sim_(&sim),
      mac_(&mac),
      ctp_(&ctp),
      config_(config),
      announce_timer_(sim) {
  members_.insert(mac.id());
  announce_timer_.set_callback([this] { announce(); });
}

void OrplNode::start() {
  // Random phase, as for every periodic protocol timer.
  Pcg32 rng(0x0B91ULL + mac_->id(), mac_->id());
  const SimTime phase = rng.uniform(static_cast<std::uint32_t>(
      std::min<SimTime>(config_.announce_interval, 0xFFFFFFFFull)));
  announce_timer_.start_periodic_at(phase + 1, config_.announce_interval);
}

void OrplNode::announce() {
  msg::OrplAnnounce a;
  a.members = members_;
  a.etx10 = ctp_->path_etx10();
  a.seqno = ++announce_seqno_;
  Frame frame;
  frame.dst = kBroadcastNode;
  frame.payload = a;
  if (mac_->send(std::move(frame), nullptr)) ++stats_.announces_sent;
}

AckDecision OrplNode::handle_announce(NodeId from,
                                      const msg::OrplAnnounce& announce) {
  NeighborFilter& nf = neighbors_[from];
  nf.members = announce.members;
  nf.etx10 = announce.etx10;
  nf.refreshed = sim_->now();

  // A child's members belong to our sub-DODAG: merge filters from any
  // neighbor deeper than us (ORPL merges along the DODAG; cost ordering is
  // the DODAG direction here).
  if (announce.etx10 != 0xFFFF && announce.etx10 > ctp_->path_etx10()) {
    members_.merge(announce.members);
  }
  return AckDecision::kAccept;
}

bool OrplNode::believes_reachable(NodeId dest) const {
  const SimTime now = sim_->now();
  for (const auto& [id, nf] : neighbors_) {
    if (nf.refreshed + config_.neighbor_lifetime < now) continue;
    if (nf.etx10 != 0xFFFF && nf.etx10 > ctp_->path_etx10() &&
        nf.members.contains(dest)) {
      return true;
    }
  }
  return false;
}

bool OrplNode::send_downward(NodeId dest, std::uint16_t command,
                             std::uint32_t seqno) {
  if (!believes_reachable(dest)) return false;
  msg::OrplData data;
  data.dest = dest;
  data.seqno = seqno;
  data.command = command;
  data.hops_so_far = 0;
  enqueue(data);
  return true;
}

AckDecision OrplNode::handle_data(NodeId from, const msg::OrplData& data) {
  (void)from;
  // Claim conditions: we must be *deeper* than the sender (downward
  // direction) and the destination must be us or inside our member filter.
  if (data.dest == mac_->id()) {
    const bool dup = std::find(seen_.begin(), seen_.end(), data.seqno) !=
                     seen_.end();
    if (!dup) {
      seen_.push_back(data.seqno);
      while (seen_.size() > 32) seen_.pop_front();
      ++stats_.deliveries;
      if (on_delivered) on_delivered(data);
    }
    return AckDecision::kAcceptAndAck;
  }

  if (ctp_->path_etx10() == 0xFFFF ||
      ctp_->path_etx10() <= data.sender_etx10) {
    return AckDecision::kIgnore;  // not deeper: wrong direction
  }
  if (!members_.contains(data.dest)) return AckDecision::kIgnore;

  const bool dup = std::find(seen_.begin(), seen_.end(), data.seqno) !=
                   seen_.end();
  if (dup) return AckDecision::kAcceptAndAck;
  seen_.push_back(data.seqno);
  while (seen_.size() > 32) seen_.pop_front();

  if (queue_.size() >= config_.queue_limit) return AckDecision::kIgnore;
  ++stats_.claims;
  // Bloom false positive detector: we claimed because our *merged* filter
  // says the destination is below us, but if no deeper neighbor (nor we)
  // actually leads there, the forward attempts will burn out — count the
  // claim as presumptively false if we cannot even name a next hop.
  if (!believes_reachable(data.dest)) ++stats_.false_positive_claims;
  enqueue(data);
  return AckDecision::kAcceptAndAck;
}

void OrplNode::enqueue(msg::OrplData data) {
  data.hops_so_far = field::u8(data.hops_so_far + 1);
  queue_.push_back(data);
  forward_next();
}

void OrplNode::forward_next() {
  if (forwarding_ || queue_.empty()) return;
  forwarding_ = true;

  msg::OrplData data = queue_.front();
  data.sender_etx10 = ctp_->path_etx10();

  Frame frame;
  frame.dst = kBroadcastNode;  // anycast: any deeper filter-holder claims
  frame.payload = data;
  const bool queued =
      mac_->send(std::move(frame), [this](const SendResult& result) {
        forwarding_ = false;
        if (queue_.empty()) return;
        if (result.success) {
          front_attempts_ = 0;
          queue_.pop_front();
        } else if (++front_attempts_ >= config_.retries) {
          // Nobody below us would take it: either a Bloom false positive
          // led us astray or the subtree is gone.
          ++stats_.drops;
          if (on_drop) on_drop(queue_.front().seqno);
          queue_.pop_front();
          front_attempts_ = 0;
        }
        forward_next();
      });
  if (!queued) {
    forwarding_ = false;
    sim_->schedule_in(kSecond, [this] { forward_next(); });
  }
}

}  // namespace telea
