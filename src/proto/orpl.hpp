#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "mac/lpl.hpp"
#include "net/ctp.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/bloom.hpp"

namespace telea {

struct OrplConfig {
  /// Sub-DODAG announcement period (ORPL piggybacks on its beacons; we send
  /// a dedicated broadcast).
  SimTime announce_interval = 30 * kSecond;
  /// Anycast send operations per hop before the packet is dropped.
  unsigned retries = 3;
  /// Entries learned from neighbors expire after this long.
  SimTime neighbor_lifetime = 3 * announce_interval;
  std::size_t queue_limit = 12;
};

/// ORPL-lite: opportunistic downward routing over Bloom-filter sub-DODAG
/// membership (Duquennoy, Landsiedel, Voigt — SenSys'13), the related-work
/// baseline the paper singles out: "the inherent false positive of bloom
/// filter can incur multiple rounds of ineffectual transmissions"
/// (Sec. V). Implemented to make that comparison reproducible:
///
/// * every node maintains a Bloom filter of itself + its descendants,
///   merged from children's announcements, and broadcasts it periodically;
/// * a downward packet is link-layer anycast: any *deeper* neighbor (higher
///   routing cost than the sender) whose filter contains the destination
///   claims it;
/// * a false positive produces a claimant that cannot actually progress —
///   it burns retries and drops, the failure mode the paper critiques.
class OrplNode {
 public:
  OrplNode(Simulator& sim, LplMac& mac, CtpNode& ctp, const OrplConfig& config);

  OrplNode(const OrplNode&) = delete;
  OrplNode& operator=(const OrplNode&) = delete;

  void start();

  // --- dispatcher entries ----------------------------------------------------
  AckDecision handle_announce(NodeId from, const msg::OrplAnnounce& announce);
  AckDecision handle_data(NodeId from, const msg::OrplData& data);

  /// Root-side: sends a command down to `dest`. Returns false when no
  /// neighbor's filter contains it (yet).
  bool send_downward(NodeId dest, std::uint16_t command, std::uint32_t seqno);

  std::function<void(const msg::OrplData&)> on_delivered;
  std::function<void(std::uint32_t seqno)> on_drop;

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] const OrplBloom& members() const noexcept { return members_; }
  /// True when some neighbor's announced filter contains `dest` (including
  /// false positives — that is the point).
  [[nodiscard]] bool believes_reachable(NodeId dest) const;

  struct Stats {
    std::uint64_t announces_sent = 0;
    std::uint64_t claims = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t drops = 0;
    std::uint64_t false_positive_claims = 0;  // claimed, could not progress
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct NeighborFilter {
    OrplBloom members;
    std::uint16_t etx10 = 0xFFFF;
    SimTime refreshed = 0;
  };

  void announce();
  void enqueue(msg::OrplData data);
  void forward_next();

  Simulator* sim_;
  LplMac* mac_;
  CtpNode* ctp_;
  OrplConfig config_;

  OrplBloom members_;  // self + descendants (merged from children)
  std::unordered_map<NodeId, NeighborFilter> neighbors_;
  Timer announce_timer_;
  std::uint8_t announce_seqno_ = 0;

  std::deque<msg::OrplData> queue_;
  bool forwarding_ = false;
  unsigned front_attempts_ = 0;
  std::deque<std::uint32_t> seen_;  // downward seqno dedup
  Stats stats_;
};

}  // namespace telea
