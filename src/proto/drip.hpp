#pragma once

#include <cstdint>
#include <functional>

#include "mac/lpl.hpp"
#include "net/trickle.hpp"
#include "radio/packet.hpp"
#include "sim/simulator.hpp"

namespace telea {

struct DripConfig {
  TrickleTimer::Config trickle{
      /*i_min=*/128 * kMillisecond,
      /*i_max=*/64 * kSecond,
      /*k=*/1};
};

/// Drip (Tolle & Culler, EWSN'05): Trickle-paced reliable dissemination —
/// the paper's *unstructured* baseline (Sec. IV-B). Remote control rides it
/// as a network-wide flood: every node adopts and rebroadcasts the newest
/// (key, version) value; only the addressed destination consumes the
/// command. Reliability is near-perfect ("PDR almost 100%"), cost is a full
/// network's worth of transmissions per control packet (Table III).
class DripNode {
 public:
  DripNode(Simulator& sim, LplMac& mac, const DripConfig& config,
           std::uint64_t seed);

  DripNode(const DripNode&) = delete;
  DripNode& operator=(const DripNode&) = delete;

  /// Starts the Trickle maintenance timer. Call at node boot.
  void start();

  /// Sink-side: disseminates a new control value addressed to `dest`.
  /// Returns the version number assigned.
  std::uint32_t disseminate(NodeId dest, std::uint16_t command);

  /// Dispatcher entry for DripMsg broadcasts.
  AckDecision handle_msg(NodeId from, const msg::DripMsg& msg);

  /// Fired at the addressed destination on first adoption of a version.
  std::function<void(const msg::DripMsg&)> on_delivered;

  /// Fired at *every* node when it adopts a newer version — stats hook for
  /// the accumulated-transmission-hop-count figure (Fig. 8b).
  std::function<void(const msg::DripMsg&)> on_adopted;

  [[nodiscard]] std::uint32_t version() const noexcept { return value_.version; }

 private:
  void broadcast_value();

  Simulator* sim_;
  LplMac* mac_;
  TrickleTimer trickle_;
  msg::DripMsg value_;  // newest known value (version 0 = none)
  bool broadcasting_ = false;
  bool rebroadcast_queued_ = false;
};

}  // namespace telea
