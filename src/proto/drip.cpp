#include "proto/drip.hpp"

#include "util/field.hpp"

namespace telea {

DripNode::DripNode(Simulator& sim, LplMac& mac, const DripConfig& config,
                   std::uint64_t seed)
    : sim_(&sim), mac_(&mac), trickle_(sim, config.trickle, seed ^ 0xD419ULL) {
  trickle_.set_callback([this] { broadcast_value(); });
}

void DripNode::start() { trickle_.start(); }

std::uint32_t DripNode::disseminate(NodeId dest, std::uint16_t command) {
  value_.key = 1;
  ++value_.version;
  value_.dest = dest;
  value_.command = command;
  value_.hops_so_far = 0;
  trickle_.reset();
  broadcast_value();
  return value_.version;
}

void DripNode::broadcast_value() {
  if (value_.version == 0) return;  // nothing to advertise yet
  if (broadcasting_) {
    // An LPL broadcast op is already in flight; remember to go again with
    // the (possibly newer) value once it completes.
    rebroadcast_queued_ = true;
    return;
  }
  broadcasting_ = true;
  Frame frame;
  frame.dst = kBroadcastNode;
  msg::DripMsg out = value_;
  out.hops_so_far = field::u8(value_.hops_so_far + 1);
  frame.payload = out;
  mac_->send(std::move(frame), [this](const SendResult&) {
    broadcasting_ = false;
    if (rebroadcast_queued_) {
      rebroadcast_queued_ = false;
      broadcast_value();
    }
  });
}

AckDecision DripNode::handle_msg(NodeId from, const msg::DripMsg& msg) {
  (void)from;
  if (msg.version > value_.version) {
    // Newer value: adopt, deliver if addressed to us, and propagate fast
    // (inconsistency resets Trickle to Imin; the reset timer transmits —
    // an additional immediate broadcast here would double the flood cost).
    value_ = msg;
    trickle_.hear_inconsistent();
    if (on_adopted) on_adopted(msg);
    if (msg.dest == mac_->id() && on_delivered) on_delivered(msg);
  } else if (msg.version < value_.version) {
    // The sender is behind: reset so we re-advertise promptly.
    trickle_.hear_inconsistent();
  } else {
    trickle_.hear_consistent();
  }
  return AckDecision::kAccept;
}

}  // namespace telea
