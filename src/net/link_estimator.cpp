#include "net/link_estimator.hpp"

#include "util/field.hpp"

#include <algorithm>
#include <cmath>

namespace telea {

const LinkEstimator::Entry* LinkEstimator::find(NodeId neighbor) const {
  for (const auto& e : table_) {
    if (e.id == neighbor) return &e;
  }
  return nullptr;
}

LinkEstimator::Entry* LinkEstimator::find_or_insert(NodeId neighbor) {
  for (auto& e : table_) {
    if (e.id == neighbor) return &e;
  }
  if (table_.size() >= config_.table_limit) {
    // Evict the entry with the worst inbound quality that has no data-driven
    // state (a neighbor we never used); if all are in use, the worst overall.
    auto victim = std::min_element(
        table_.begin(), table_.end(), [](const Entry& a, const Entry& b) {
          if (a.data_valid != b.data_valid) return !a.data_valid;
          return a.in_quality < b.in_quality;
        });
    *victim = Entry{};
    victim->id = neighbor;
    return &*victim;
  }
  table_.push_back(Entry{});
  table_.back().id = neighbor;
  return &table_.back();
}

void LinkEstimator::on_beacon(NodeId neighbor, std::uint8_t seqno) {
  Entry* e = find_or_insert(neighbor);
  if (!e->has_seqno) {
    e->has_seqno = true;
    e->last_seqno = seqno;
    e->window_received = 1;
    return;
  }
  // Link seqnos are defined to wrap mod 256; the delta wants modular, not
  // saturating, arithmetic.
  const std::uint8_t gap = field::wrap_u8(seqno - e->last_seqno);
  e->last_seqno = seqno;
  if (gap == 0) return;  // duplicate beacon copy
  e->window_received += 1;
  e->window_missed += gap - 1;
  if (e->window_received >= config_.beacon_window) {
    const double ratio =
        static_cast<double>(e->window_received) /
        static_cast<double>(e->window_received + e->window_missed);
    if (e->quality_valid) {
      e->in_quality = config_.alpha * e->in_quality +
                      (1.0 - config_.alpha) * ratio;
    } else {
      e->in_quality = ratio;
      e->quality_valid = true;
    }
    e->window_received = 0;
    e->window_missed = 0;
  }
}

void LinkEstimator::on_data_tx(NodeId neighbor, bool acked) {
  Entry* e = find_or_insert(neighbor);
  ++e->data_attempts_since_success;
  if (!acked) return;
  const auto attempts = static_cast<double>(e->data_attempts_since_success);
  e->data_attempts_since_success = 0;
  if (e->data_valid) {
    e->data_etx = config_.data_alpha * e->data_etx +
                  (1.0 - config_.data_alpha) * attempts;
  } else {
    e->data_etx = attempts;
    e->data_valid = true;
  }
}

std::uint16_t LinkEstimator::etx10(NodeId neighbor) const {
  const Entry* e = find(neighbor);
  if (e == nullptr) return config_.max_etx10;

  double etx = 0.0;
  if (e->data_attempts_since_success >= 3) {
    // A run of unacknowledged transmissions is evidence *now*, even before
    // the next success closes the window — otherwise a one-way link (heard
    // fine, never acks) would keep its optimistic estimate forever.
    etx = std::max<double>(e->data_valid ? e->data_etx : 0.0,
                           e->data_attempts_since_success);
  } else if (e->data_valid) {
    // Data-driven forward ETX is ground truth once we have it.
    etx = e->data_etx;
  } else if (e->quality_valid && e->in_quality > 0.01) {
    // Beacon-only estimate: assume roughly symmetric links, so the
    // bidirectional ETX is ~1/q² (forward ≈ reverse ≈ q).
    etx = 1.0 / (e->in_quality * e->in_quality);
  } else {
    // Known neighbor without a full estimation window yet: optimistic
    // default (TinyOS's estimator likewise seeds new links optimistically so
    // routes can form before five beacons have been counted).
    etx = 2.0;
  }
  const double etx10 = std::min(etx * 10.0,
                                static_cast<double>(config_.max_etx10));
  return field::u16(std::lround(etx10));
}

bool LinkEstimator::knows(NodeId neighbor) const {
  return find(neighbor) != nullptr;
}

double LinkEstimator::inbound_quality(NodeId neighbor) const {
  const Entry* e = find(neighbor);
  return (e != nullptr && e->quality_valid) ? e->in_quality : 0.0;
}

std::vector<NodeId> LinkEstimator::neighbors() const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (const auto& e : table_) out.push_back(e.id);
  return out;
}

void LinkEstimator::evict(NodeId neighbor) {
  std::erase_if(table_, [neighbor](const Entry& e) { return e.id == neighbor; });
}

}  // namespace telea
