#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace telea {

/// The Trickle algorithm (Levis et al., NSDI'04; RFC 6206): an adaptive
/// suppression timer. The interval doubles from Imin to Imax while the
/// network is consistent; hearing an inconsistency resets it. A firing is
/// suppressed when ≥ k consistent messages were heard this interval
/// (k = 0 disables suppression, as CTP's beacon timer does).
///
/// Used here to pace CTP routing beacons and Drip dissemination — both as in
/// the paper's stack (Sec. IV-A1: "constructed by CTP with Trickle").
class TrickleTimer {
 public:
  struct Config {
    SimTime i_min = 512 * kMillisecond;
    SimTime i_max = 512 * kMillisecond * (1u << 10);  // ~524 s
    unsigned k = 0;  // suppression constant; 0 = never suppress
  };

  TrickleTimer(Simulator& sim, const Config& config, std::uint64_t seed);

  /// `fire` is invoked at each (unsuppressed) Trickle firing.
  void set_callback(std::function<void()> fire) { fire_ = std::move(fire); }

  /// Starts (or restarts) the timer at Imin.
  void start();
  void stop();

  /// Call when a *consistent* message is heard (counts toward suppression).
  void hear_consistent();

  /// Call when an *inconsistent* message is heard: resets the interval to
  /// Imin (only if it is not already there, per RFC 6206 §4.2 rule 6).
  void hear_inconsistent();

  /// Explicit reset to Imin (e.g. route change, pull request).
  void reset();

  [[nodiscard]] SimTime current_interval() const noexcept { return interval_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void begin_interval();
  void on_fire();
  void on_interval_end();

  Simulator* sim_;
  Config config_;
  std::function<void()> fire_;
  Pcg32 rng_;
  Timer fire_timer_;
  Timer interval_timer_;
  SimTime interval_ = 0;
  unsigned heard_ = 0;
  bool running_ = false;
};

}  // namespace telea
