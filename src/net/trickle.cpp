#include "net/trickle.hpp"

namespace telea {

TrickleTimer::TrickleTimer(Simulator& sim, const Config& config,
                           std::uint64_t seed)
    : sim_(&sim),
      config_(config),
      rng_(seed, /*stream=*/0x7121CC1EULL),
      fire_timer_(sim),
      interval_timer_(sim) {
  fire_timer_.set_callback([this] { on_fire(); });
  interval_timer_.set_callback([this] { on_interval_end(); });
}

void TrickleTimer::start() {
  running_ = true;
  interval_ = config_.i_min;
  begin_interval();
}

void TrickleTimer::stop() {
  running_ = false;
  fire_timer_.stop();
  interval_timer_.stop();
}

void TrickleTimer::begin_interval() {
  heard_ = 0;
  // Fire at a uniform point in the second half of the interval (RFC 6206).
  const SimTime half = interval_ / 2;
  const SimTime t =
      half + rng_.uniform(static_cast<std::uint32_t>(
                 std::min<SimTime>(half, 0xFFFFFFFFull))) +
      1;
  fire_timer_.start_one_shot(t);
  interval_timer_.start_one_shot(interval_);
}

void TrickleTimer::on_fire() {
  if (config_.k != 0 && heard_ >= config_.k) return;  // suppressed
  if (fire_) fire_();
}

void TrickleTimer::on_interval_end() {
  if (!running_) return;
  interval_ = std::min(interval_ * 2, config_.i_max);
  begin_interval();
}

void TrickleTimer::hear_consistent() { ++heard_; }

void TrickleTimer::hear_inconsistent() {
  if (running_ && interval_ != config_.i_min) reset();
}

void TrickleTimer::reset() {
  if (!running_) return;
  fire_timer_.stop();
  interval_timer_.stop();
  interval_ = config_.i_min;
  begin_interval();
}

}  // namespace telea
