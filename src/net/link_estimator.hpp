#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ids.hpp"

namespace telea {

/// Per-neighbor link quality estimation in the style of TinyOS's 4-bit link
/// estimator (the one CTP ships with): beacon-driven inbound delivery ratio
/// via sequence-number gaps (windowed WMEWMA), blended with data-driven ETX
/// from unicast acknowledgement outcomes once available.
class LinkEstimator {
 public:
  struct Config {
    std::size_t table_limit = 24;
    std::size_t beacon_window = 5;   // receptions per WMEWMA update
    double alpha = 0.9;              // WMEWMA history weight
    double data_alpha = 0.75;        // data-driven ETX EWMA weight
    std::uint16_t max_etx10 = 1000;  // saturation (ETX 100.0)
  };

  LinkEstimator() : LinkEstimator(Config{}) {}
  explicit LinkEstimator(const Config& config) : config_(config) {}

  /// Records a received routing beacon (seqno drives the gap estimate).
  void on_beacon(NodeId neighbor, std::uint8_t seqno);

  /// Records the outcome of one unicast data transmission attempt.
  void on_data_tx(NodeId neighbor, bool acked);

  /// Bidirectional ETX to `neighbor` in 1/10 units (10 = perfect link),
  /// or max when the neighbor is unknown / too stale to trust.
  [[nodiscard]] std::uint16_t etx10(NodeId neighbor) const;

  [[nodiscard]] bool knows(NodeId neighbor) const;

  /// Inbound delivery ratio estimate in [0,1]; 0 when unknown.
  [[nodiscard]] double inbound_quality(NodeId neighbor) const;

  [[nodiscard]] std::vector<NodeId> neighbors() const;

  /// Drops a neighbor (e.g. proven dead).
  void evict(NodeId neighbor);

  /// Drops every estimate — a reboot that loses RAM state starts from an
  /// empty table and re-learns links from scratch.
  void clear() { table_.clear(); }

 private:
  struct Entry {
    NodeId id = kInvalidNode;
    std::uint8_t last_seqno = 0;
    bool has_seqno = false;
    std::uint32_t window_received = 0;
    std::uint32_t window_missed = 0;
    double in_quality = 0.0;   // WMEWMA inbound delivery ratio
    bool quality_valid = false;
    double data_etx = 0.0;     // EWMA of attempts-per-success
    std::uint32_t data_attempts_since_success = 0;
    bool data_valid = false;
  };

  [[nodiscard]] const Entry* find(NodeId neighbor) const;
  Entry* find_or_insert(NodeId neighbor);

  Config config_;
  std::vector<Entry> table_;
};

}  // namespace telea
