#include "net/ctp.hpp"

#include "util/field.hpp"

#include <algorithm>
#include <cassert>

#include "util/logging.hpp"

namespace telea {

CtpNode::CtpNode(Simulator& sim, LplMac& mac, LinkEstimator& estimator,
                 const CtpConfig& config, bool is_root, std::uint64_t seed)
    : sim_(&sim),
      mac_(&mac),
      estimator_(&estimator),
      config_(config),
      is_root_(is_root),
      beacon_timer_(sim, config.beacon_timer, seed ^ 0xC7B0ULL) {
  if (is_root_) {
    path_etx10_ = 0;
    hops_ = 0;
  }
  beacon_timer_.set_callback([this] { send_beacon(false); });
}

void CtpNode::start() {
  beacon_timer_.start();
  if (is_root_ && listener_ != nullptr && !route_announced_) {
    route_announced_ = true;
    listener_->on_route_found();
  }
}

void CtpNode::send_beacon(bool pull) {
  msg::CtpBeacon beacon;
  beacon.parent = parent_;
  beacon.etx = path_etx10_;
  beacon.hops = hops_;
  beacon.seqno = ++beacon_seqno_;
  beacon.pull = pull || (!is_root_ && parent_ == kInvalidNode);
  if (piggyback_ != nullptr) piggyback_->fill_beacon(beacon);
  ++stats_.beacons_sent;

  Frame frame;
  frame.dst = kBroadcastNode;
  frame.payload = beacon;
  mac_->send(std::move(frame), nullptr);
}

std::optional<CtpNode::NeighborRoute> CtpNode::neighbor_route(NodeId id) const {
  for (const auto& e : routes_) {
    if (e.id == id) return e.route;
  }
  return std::nullopt;
}

SimTime CtpNode::parent_last_heard() const noexcept {
  if (parent_ == kInvalidNode) return 0;
  for (const auto& e : routes_) {
    if (e.id == parent_) return e.heard;
  }
  return 0;
}

void CtpNode::handle_beacon(NodeId from, const msg::CtpBeacon& beacon) {
  estimator_->on_beacon(from, beacon.seqno);

  auto it = std::find_if(routes_.begin(), routes_.end(),
                         [from](const RouteEntry& e) { return e.id == from; });
  if (it == routes_.end()) {
    routes_.push_back(RouteEntry{from, {}});
    it = routes_.end() - 1;
  }
  it->route = NeighborRoute{beacon.parent, beacon.etx, beacon.hops};
  it->heard = sim_->now();

  // Answer a pull only when we actually have a route to advertise; a
  // route-less cluster pulling each other would otherwise beacon-storm at
  // Imin indefinitely.
  if (beacon.pull && has_route()) beacon_timer_.reset();

  recompute_route();

  if (listener_ != nullptr) listener_->on_beacon_heard(from, beacon);
}

void CtpNode::recompute_route() {
  if (is_root_) return;

  // A parent that now advertises an invalid route — or a route through us
  // (a mutual loop formed from a stale entry on its side) — is no route at
  // all. Without the loop clause the mutual case is stable: the selection
  // loop below only refuses to *pick* such a neighbor, it never evicts one
  // we already hold, so two nodes pointing at each other would keep doing so
  // for as long as the churn that created the race lasts.
  if (parent_ != kInvalidNode) {
    const auto cur = neighbor_route(parent_);
    if (cur.has_value() && (cur->etx10 >= config_.max_path_etx10 ||
                            cur->parent == mac_->id())) {
      parent_ = kInvalidNode;
      path_etx10_ = 0xFFFF;
      hops_ = 0xFF;
    }
  }

  NodeId best = kInvalidNode;
  std::uint32_t best_cost = config_.max_path_etx10;
  std::uint8_t best_hops = 0xFF;
  for (const auto& e : routes_) {
    if (e.route.etx10 >= config_.max_path_etx10) continue;
    if (e.route.parent == mac_->id()) continue;  // obvious 1-hop loop
    const std::uint32_t link = estimator_->etx10(e.id);
    const std::uint32_t cost = e.route.etx10 + link;
    if (cost < best_cost) {
      best_cost = cost;
      best = e.id;
      best_hops = field::u8(e.route.hops == 0xFF ? 0xFF : e.route.hops + 1);
    }
  }
  if (best == kInvalidNode) return;

  const bool have_route = parent_ != kInvalidNode;
  const bool switch_worthy =
      !have_route ||
      best_cost + config_.parent_switch_threshold10 <
          static_cast<std::uint32_t>(path_etx10_) ||
      // Our current parent's refreshed advertisement may have worsened the
      // route through it; always track the recomputed cost via the same
      // parent.
      best == parent_;

  if (!switch_worthy) return;

  const NodeId old_parent = parent_;
  const std::uint16_t old_cost = path_etx10_;
  parent_ = best;
  path_etx10_ = field::u16(best_cost);
  hops_ = best_hops;

  if (old_parent != parent_) {
    ++stats_.parent_changes;
    if (listener_ != nullptr) listener_->on_parent_changed(old_parent, parent_);
    beacon_timer_.reset();  // topology change: advertise promptly
  } else if (path_etx10_ > old_cost &&
             path_etx10_ - old_cost >= config_.parent_switch_threshold10) {
    // Cost through the unchanged parent jumped: the tree above us worsened,
    // or we are part of a routing loop counting itself up. Either way the
    // neighborhood's picture of us is now inconsistent — reset the beacon
    // interval (trickle's inconsistency rule) so the new cost propagates at
    // Imin. In a loop this is what turns count-to-infinity from hours (Imax
    // beacons) into seconds: each prompt beacon bumps the next member until
    // the cost crosses max_path_etx10 and the cycle tears itself down.
    beacon_timer_.reset();
  }
  if (!route_announced_) {
    route_announced_ = true;
    if (listener_ != nullptr) listener_->on_route_found();
  }
}

bool CtpNode::send_to_sink(msg::CtpData data) {
  data.origin = mac_->id();
  data.origin_seqno = ++next_origin_seqno_;
  data.thl = 0;
  if (is_root_) {
    ++stats_.data_originated;
    ++stats_.data_delivered;
    if (deliver_) deliver_(data);
    return true;
  }
  if (forward_queue_.size() >= config_.forward_queue_limit) {
    ++stats_.data_dropped;
    return false;
  }
  ++stats_.data_originated;
  if (origin_hook_) origin_hook_(data);
  if (data.is_control_ack) {
    TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(), TraceEvent::kAckPath,
                      data.control_seqno, parent_);
  }
  forward_queue_.push_back(data);
  forward_queue_hwm_ = std::max(forward_queue_hwm_, forward_queue_.size());
  forward_next();
  return true;
}

AckDecision CtpNode::handle_data(NodeId from, const msg::CtpData& data,
                                 bool for_me) {
  (void)from;
  if (!for_me) return AckDecision::kIgnore;

  // Datapath loop probe: a sender whose advertised cost is not above ours
  // indicates stale routing state somewhere — pull beacons (CTP's P bit via
  // an immediate beacon with pull set).
  if (!is_root_ && data.etx <= path_etx10_) {
    beacon_timer_.reset();
  }

  const bool dup = std::any_of(
      seen_.begin(), seen_.end(), [&data](const SeenData& s) {
        return s.origin == data.origin && s.seqno == data.origin_seqno;
      });
  if (dup) return AckDecision::kAcceptAndAck;  // ack, but don't re-forward

  seen_.push_back(SeenData{data.origin, data.origin_seqno});
  while (seen_.size() > config_.dedup_cache) seen_.pop_front();

  if (is_root_) {
    ++stats_.data_delivered;
    if (deliver_) deliver_(data);
    return AckDecision::kAcceptAndAck;
  }

  if (forward_queue_.size() >= config_.forward_queue_limit) {
    // No queue space: refuse the ack so the previous hop keeps trying.
    seen_.pop_back();
    return AckDecision::kIgnore;
  }
  msg::CtpData fwd = data;
  fwd.thl = field::u8(data.thl + 1);
  ++stats_.data_forwarded;
  if (fwd.is_control_ack) {
    TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(), TraceEvent::kAckPath,
                      fwd.control_seqno, parent_);
  }
  forward_queue_.push_back(fwd);
  forward_queue_hwm_ = std::max(forward_queue_hwm_, forward_queue_.size());
  forward_next();
  return AckDecision::kAcceptAndAck;
}

void CtpNode::forward_next() {
  if (forwarding_ || forward_queue_.empty()) return;
  if (parent_ == kInvalidNode) {
    // No route yet; retry when one appears (cheap poll via timer-less
    // rescheduling on the next beacon-driven recompute is implicit: the
    // queue is re-kicked after every send completion, so just wait).
    sim_->schedule_in(kSecond, [this] { forward_next(); }, "ctp.requeue");
    return;
  }
  forwarding_ = true;
  forwarding_to_ = parent_;

  msg::CtpData data = forward_queue_.front();
  data.etx = path_etx10_;

  Frame frame;
  frame.dst = parent_;
  frame.payload = data;
  const bool queued = mac_->send(
      std::move(frame), [this](const SendResult& r) { on_forward_done(r); });
  if (!queued) {
    forwarding_ = false;
    sim_->schedule_in(kSecond, [this] { forward_next(); }, "ctp.requeue");
  }
}

void CtpNode::on_forward_done(const SendResult& result) {
  forwarding_ = false;
  if (forward_queue_.empty()) return;

  estimator_->on_data_tx(forwarding_to_, result.success);

  if (result.success) {
    consecutive_failures_ = 0;
    front_attempts_ = 0;
    forward_queue_.pop_front();
    forward_next();
    return;
  }

  ++consecutive_failures_;
  ++front_attempts_;
  if (front_attempts_ >= config_.data_retx) {
    forward_queue_.pop_front();  // give up on this packet
    front_attempts_ = 0;
    ++stats_.data_dropped;
  }
  if (consecutive_failures_ >= config_.reroute_after &&
      forwarding_to_ == parent_) {
    consecutive_failures_ = 0;
    report_parent_trouble();
  }
  forward_next();
}

void CtpNode::reset_routing() {
  if (!is_root_) {
    parent_ = kInvalidNode;
    path_etx10_ = 0xFFFF;
    hops_ = 0xFF;
  }
  route_announced_ = false;
  routes_.clear();
  forward_queue_.clear();
  forward_queue_hwm_ = 0;  // RAM-resident watermark: lost with the queue
  forwarding_ = false;
  forwarding_to_ = kInvalidNode;
  front_attempts_ = 0;
  consecutive_failures_ = 0;
  seen_.clear();
  estimator_->clear();
  beacon_timer_.reset();  // beacon at Imin: announce the cold boot promptly
}

void CtpNode::report_parent_trouble() {
  if (is_root_ || parent_ == kInvalidNode) return;
  // Parent looks dead or one-way: drop it and force reselection + pull.
  estimator_->evict(parent_);
  std::erase_if(routes_,
                [this](const RouteEntry& e) { return e.id == parent_; });
  parent_ = kInvalidNode;
  path_etx10_ = 0xFFFF;
  recompute_route();
  send_beacon(true);
}

}  // namespace telea
