#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "mac/lpl.hpp"
#include "net/link_estimator.hpp"
#include "net/trickle.hpp"
#include "radio/packet.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace telea {

/// Observer interface for the routing plane. TeleAdjusting hangs off these
/// hooks: the paper triggers path-code construction on the "routing found"
/// event, learns child position claims from overheard routing beacons, and
/// clears neighbor-unreachable flags when a beacon is heard again.
class CtpListener {
 public:
  virtual ~CtpListener() = default;
  virtual void on_route_found() {}
  virtual void on_parent_changed(NodeId old_parent, NodeId new_parent) {
    (void)old_parent;
    (void)new_parent;
  }
  virtual void on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon) {
    (void)from;
    (void)beacon;
  }
};

/// Provider hook: fills the TeleAdjusting piggyback fields into an outgoing
/// routing beacon (position maintenance, Sec. III-B5).
class BeaconPiggyback {
 public:
  virtual ~BeaconPiggyback() = default;
  virtual void fill_beacon(msg::CtpBeacon& beacon) = 0;
};

struct CtpConfig {
  // TinyOS CTP beacon-timer defaults: Imin 128 ms doubling to ~512 s, no
  // suppression. The fast early beacons matter: parent selection, child
  // discovery and the TeleAdjusting trigger all ride them.
  TrickleTimer::Config beacon_timer{
      /*i_min=*/128 * kMillisecond,
      /*i_max=*/128 * kMillisecond * (1u << 12),
      /*k=*/0};
  std::uint16_t parent_switch_threshold10 = 15;  // 1.5 ETX hysteresis
  std::uint16_t max_path_etx10 = 2000;
  unsigned data_retx = 8;       // link-layer send ops per hop before drop
  unsigned reroute_after = 3;   // failed sends before forcing reselection
  std::size_t forward_queue_limit = 12;
  std::size_t dedup_cache = 64;
};

/// The Collection Tree Protocol (Gnawali et al., SenSys'09): cost-optimal
/// (minimum path-ETX) anycast collection to a root. This is the substrate
/// TeleAdjusting's reverse-path coding is built on (paper Sec. III-B: the
/// parent in the code tree *is* the CTP parent) and the return channel for
/// end-to-end acknowledgements.
///
/// Implemented: routing engine (Trickle-paced beacons, ETX parent selection
/// with hysteresis, pull bit), forwarding engine (per-hop retransmission,
/// duplicate suppression, datapath loop detection -> beacon reset).
class CtpNode {
 public:
  CtpNode(Simulator& sim, LplMac& mac, LinkEstimator& estimator,
          const CtpConfig& config, bool is_root, std::uint64_t seed);

  CtpNode(const CtpNode&) = delete;
  CtpNode& operator=(const CtpNode&) = delete;

  /// Begins beaconing / route formation. Call at node boot.
  void start();

  void set_listener(CtpListener* listener) { listener_ = listener; }
  void set_piggyback(BeaconPiggyback* piggyback) { piggyback_ = piggyback; }

  /// Root-side delivery of collected data.
  using DeliverFn = std::function<void(const msg::CtpData&)>;
  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Origin-side piggyback hook: invoked once per locally-originated upward
  /// frame (collection data *and* e2e control acks), after origin/seqno
  /// stamping and only when the frame is actually accepted into the forward
  /// queue. The in-band health reporter attaches its report here; forwarding
  /// hops never see the hook, so piggybacks ride origin frames unmodified.
  using OriginHook = std::function<void(msg::CtpData&)>;
  void set_origin_hook(OriginHook hook) { origin_hook_ = std::move(hook); }

  /// Sends an application payload toward the sink. Returns false when the
  /// forwarding queue is full.
  bool send_to_sink(msg::CtpData data);

  /// Allocates an origin sequence number from the same counter
  /// send_to_sink uses — for callers that inject pre-stamped data frames
  /// into the collection plane by other routes (TeleAdjusting's detour
  /// acknowledgement, Sec. III-C5).
  [[nodiscard]] std::uint8_t allocate_origin_seqno() {
    return ++next_origin_seqno_;
  }

  // --- frame plumbing (called by the node's dispatcher) -----------------
  void handle_beacon(NodeId from, const msg::CtpBeacon& beacon);
  AckDecision handle_data(NodeId from, const msg::CtpData& data, bool for_me);

  // --- routing state ------------------------------------------------------
  [[nodiscard]] bool has_route() const noexcept {
    return is_root_ || parent_ != kInvalidNode;
  }
  [[nodiscard]] NodeId parent() const noexcept { return parent_; }
  [[nodiscard]] std::uint16_t path_etx10() const noexcept { return path_etx10_; }
  [[nodiscard]] std::uint8_t hops() const noexcept { return hops_; }
  /// When the current parent's beacon was last received (0 = never / no
  /// parent). Lets the invariant engine tell an *active* parent link from a
  /// pointer frozen by a link fault (docs/STATIC_ANALYSIS.md, ctp.no_loop).
  [[nodiscard]] SimTime parent_last_heard() const noexcept;
  [[nodiscard]] bool is_root() const noexcept { return is_root_; }
  [[nodiscard]] LinkEstimator& estimator() noexcept { return *estimator_; }

  /// Advertised state of a neighbor, if we have heard a beacon from it.
  struct NeighborRoute {
    NodeId parent = kInvalidNode;
    std::uint16_t etx10 = 0xFFFF;
    std::uint8_t hops = 0xFF;
  };
  [[nodiscard]] std::optional<NeighborRoute> neighbor_route(NodeId id) const;

  /// Forces an immediate beacon (used by tests and by the pull mechanism).
  void send_beacon(bool pull);

  /// Observable activity of this node's collection plane (serial-report
  /// counters, mirrored into the metrics registry by the harness).
  struct Stats {
    std::uint64_t beacons_sent = 0;
    std::uint64_t data_originated = 0;  // send_to_sink accepted
    std::uint64_t data_forwarded = 0;   // relayed for others
    std::uint64_t data_delivered = 0;   // consumed at the root
    std::uint64_t data_dropped = 0;     // retx budget exhausted / queue full
    std::uint64_t parent_changes = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Deepest the forward queue has been since boot (or since the last
  /// state-loss reboot) — the "RX queue" half of the health report's
  /// queue high-water field.
  [[nodiscard]] std::size_t forward_queue_hwm() const noexcept {
    return forward_queue_hwm_;
  }

  /// Attaches a decision tracer: CTP reports each hop a control-plane e2e
  /// acknowledgement takes toward the sink (TraceEvent::kAckPath).
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Out-of-band report that unicasts to the current parent keep failing
  /// (e.g. TeleAdjusting's position requests on an asymmetric link): drops
  /// the parent and forces reselection, exactly as repeated data-plane
  /// failures would.
  void report_parent_trouble();

  /// Wipes all routing state (parent, neighbor routes, queues, dedup cache)
  /// back to cold boot — a reboot that loses RAM. Resets the beacon timer to
  /// Imin for fast reconvergence and re-arms the one-shot route-found
  /// announcement so downstream planes (path-code addressing) rebuild too.
  void reset_routing();

 private:
  struct RouteEntry {
    NodeId id;
    NeighborRoute route;
    SimTime heard = 0;  // when this neighbor's beacon was last received
  };

  void recompute_route();
  void forward_next();
  void on_forward_done(const SendResult& result);

  Simulator* sim_;
  LplMac* mac_;
  LinkEstimator* estimator_;
  CtpConfig config_;
  bool is_root_;
  CtpListener* listener_ = nullptr;
  BeaconPiggyback* piggyback_ = nullptr;
  DeliverFn deliver_;
  OriginHook origin_hook_;
  Tracer* tracer_ = nullptr;
  Stats stats_;

  TrickleTimer beacon_timer_;
  std::uint8_t beacon_seqno_ = 0;

  NodeId parent_ = kInvalidNode;
  std::uint16_t path_etx10_ = 0xFFFF;
  std::uint8_t hops_ = 0xFF;
  bool route_announced_ = false;
  std::vector<RouteEntry> routes_;  // advertised routes of neighbors

  std::deque<msg::CtpData> forward_queue_;
  std::size_t forward_queue_hwm_ = 0;
  bool forwarding_ = false;
  NodeId forwarding_to_ = kInvalidNode;
  unsigned front_attempts_ = 0;        // send ops spent on the head packet
  unsigned consecutive_failures_ = 0;  // across packets, drives reroute
  std::uint8_t next_origin_seqno_ = 0;

  // Duplicate suppression: recently seen (origin, origin_seqno, thl).
  struct SeenData {
    NodeId origin;
    std::uint8_t seqno;
  };
  std::deque<SeenData> seen_;
};

}  // namespace telea
