#include "topo/topology.hpp"

#include <algorithm>
#include <cmath>

#include "radio/phy.hpp"
#include "util/rng.hpp"

namespace telea {

namespace {

/// Reference loss tuned so that the scenario's nominal radio range (where
/// the RSSI meets CC2420 sensitivity at zero noise margin) comes out right:
/// PL0 = tx_power - sensitivity - 10*n*log10(range).
double reference_loss_for_range(double tx_power_dbm, double exponent,
                                double range_m) {
  return tx_power_dbm - Cc2420Phy::kSensitivityDbm -
         10.0 * exponent * std::log10(range_m);
}

}  // namespace

Topology make_tight_grid(std::uint64_t seed) {
  Topology topo;
  topo.name = "Tight-grid";
  topo.tx_power_dbm = Cc2420Phy::tx_power_dbm(31);  // 0 dBm, "high gain"
  topo.path_loss.exponent = 4.0;
  // ~35 m nominal range over a 13.3 m cell pitch: each node reaches its
  // 1-2 cell neighborhood, the field is a handful of hops deep.
  topo.path_loss.loss_at_reference_db =
      reference_loss_for_range(topo.tx_power_dbm, 4.0, 35.0);
  topo.path_loss.shadowing_sigma_db = 3.2;

  constexpr int kGrid = 15;
  constexpr double kField = 200.0;
  constexpr double kCell = kField / kGrid;
  Pcg32 rng(seed, /*stream=*/0x716871ULL);

  // Node 0 (sink) at the center of the field.
  topo.positions.push_back(Position{kField / 2, kField / 2});
  for (int r = 0; r < kGrid; ++r) {
    for (int c = 0; c < kGrid; ++c) {
      if (topo.positions.size() >= 225) break;
      // Skip the center cell: the sink stands in for it.
      if (r == kGrid / 2 && c == kGrid / 2) continue;
      const double x = (c + rng.uniform01()) * kCell;
      const double y = (r + rng.uniform01()) * kCell;
      topo.positions.push_back(Position{x, y});
    }
  }
  return topo;
}

Topology make_sparse_linear(std::uint64_t seed) {
  Topology topo;
  topo.name = "Sparse-linear";
  topo.tx_power_dbm = Cc2420Phy::tx_power_dbm(31);
  topo.path_loss.exponent = 4.0;
  // "Low gain": shorter nominal range (30 m) over a 13.3 m row pitch — the
  // 600 m long field becomes a deep multi-hop chain (~20 hops) from the
  // endpoint sink, without overflowing the 128-bit path-code capacity.
  topo.path_loss.loss_at_reference_db =
      reference_loss_for_range(topo.tx_power_dbm, 4.0, 30.0);
  topo.path_loss.shadowing_sigma_db = 3.2;

  constexpr int kCols = 5;
  constexpr int kRows = 45;
  constexpr double kWidth = 60.0;
  constexpr double kLength = 600.0;
  constexpr double kCellX = kWidth / kCols;
  constexpr double kCellY = kLength / kRows;
  Pcg32 rng(seed, /*stream=*/0x5195ULL);

  // Sink at one endpoint of the field (center of the near edge).
  topo.positions.push_back(Position{kWidth / 2, 0.0});
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      if (topo.positions.size() >= 225) break;
      const double x = (c + rng.uniform01()) * kCellX;
      const double y = (r + rng.uniform01()) * kCellY;
      topo.positions.push_back(Position{x, y});
    }
  }
  return topo;
}

Topology make_indoor_testbed(std::uint64_t seed) {
  Topology topo;
  topo.name = "Indoor-testbed";
  topo.tx_power_dbm = Cc2420Phy::tx_power_dbm(2);  // paper: CC2420 level 2
  topo.path_loss.exponent = 4.0;
  // Indoor short links: ~4.5 m nominal range at the very low power level, so
  // the 2×11 board (1.8 m pitch) plus scattered nodes yields up to 6 hops.
  topo.path_loss.loss_at_reference_db =
      reference_loss_for_range(topo.tx_power_dbm, 4.0, 4.5);
  topo.path_loss.shadowing_sigma_db = 3.8;  // indoor multipath

  Pcg32 rng(seed, /*stream=*/0x13D0ULL);

  // Sink at one end of the board.
  topo.positions.push_back(Position{0.0, 0.0});
  // 22 board nodes: 2 rows × 11 columns, 1.8 m pitch (sink replaces the
  // first slot).
  constexpr double kPitch = 1.8;
  for (int row = 0; row < 2; ++row) {
    for (int col = 0; col < 11; ++col) {
      if (row == 0 && col == 0) continue;  // sink slot
      topo.positions.push_back(
          Position{col * kPitch, row * kPitch});
    }
  }
  // 18 nodes scattered around the testbed in a band surrounding the board.
  const double kBoardLen = 10 * kPitch;
  for (int i = 0; i < 18; ++i) {
    const double x = rng.uniform_real(-3.0, kBoardLen + 3.0);
    const double y = rng.uniform_real(-4.0, 6.0);
    topo.positions.push_back(Position{x, y});
  }
  return topo;
}

Topology make_uniform_random(std::size_t nodes, double side_m,
                             std::uint64_t seed) {
  Topology topo;
  topo.name = "Uniform-random";
  topo.tx_power_dbm = Cc2420Phy::tx_power_dbm(31);
  topo.path_loss.exponent = 4.0;
  // Nominal range of ~side/3: dense enough that a uniform field is
  // connected with high probability, still several hops across.
  topo.path_loss.loss_at_reference_db =
      reference_loss_for_range(topo.tx_power_dbm, 4.0, side_m / 3.0);
  Pcg32 rng(seed, /*stream=*/0x0A4DULL);
  topo.positions.push_back(Position{side_m / 2, side_m / 2});  // sink center
  for (std::size_t i = 1; i < nodes; ++i) {
    topo.positions.push_back(
        Position{rng.uniform_real(0, side_m), rng.uniform_real(0, side_m)});
  }
  return topo;
}

bool is_connected(const Topology& topo, std::uint64_t seed, double margin_db) {
  if (topo.size() == 0) return false;
  LinkGainTable gains(topo.positions, topo.path_loss, seed);
  const double budget =
      topo.tx_power_dbm - Cc2420Phy::kSensitivityDbm + margin_db;
  gains.build_neighbor_lists(budget);
  // BFS from the sink over bidirectionally usable links.
  std::vector<bool> reached(topo.size(), false);
  std::vector<NodeId> frontier{kSinkNode};
  reached[kSinkNode] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const NodeId cur = frontier.back();
    frontier.pop_back();
    for (NodeId nb : gains.neighbors_within(cur)) {
      if (reached[nb] || gains.loss_db(nb, cur) > budget) continue;
      reached[nb] = true;
      ++count;
      frontier.push_back(nb);
    }
  }
  return count == topo.size();
}

Topology make_connected_random(std::size_t nodes, double side_m,
                               std::uint64_t seed) {
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    Topology topo =
        make_uniform_random(nodes, side_m, seed + attempt * 0x51D5ULL);
    // Check under the caller's seed: the network's gain table (and thus its
    // shadowing draw) is built from that same seed, so the verdict holds.
    if (is_connected(topo, seed)) {
      topo.name = "Connected-random";
      return topo;
    }
  }
  // Fall back to a guaranteed-connected line if the field is hopeless.
  return make_line(nodes, side_m / static_cast<double>(nodes));
}

Topology make_line(std::size_t nodes, double spacing_m) {
  Topology topo;
  topo.name = "Line";
  topo.tx_power_dbm = Cc2420Phy::tx_power_dbm(31);
  topo.path_loss.exponent = 4.0;
  topo.path_loss.loss_at_reference_db =
      reference_loss_for_range(topo.tx_power_dbm, 4.0, spacing_m * 1.5);
  topo.path_loss.shadowing_sigma_db = 0.0;  // deterministic for tests
  for (std::size_t i = 0; i < nodes; ++i) {
    topo.positions.push_back(Position{static_cast<double>(i) * spacing_m, 0.0});
  }
  return topo;
}

}  // namespace telea
