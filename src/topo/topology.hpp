#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "radio/propagation.hpp"
#include "util/ids.hpp"

namespace telea {

/// A generated deployment: node positions (index == NodeId; the sink is node
/// 0 by convention) plus the radio parameters that make the scenario behave
/// like the paper's ("high gain" vs "low gain" fields, testbed power level).
struct Topology {
  std::string name;
  std::vector<Position> positions;
  PathLossConfig path_loss{};
  double tx_power_dbm = 0.0;

  [[nodiscard]] std::size_t size() const noexcept { return positions.size(); }
};

/// Paper Sec. IV-A1, "Tight-grid": 225 nodes randomly placed one per cell of
/// a 15×15 grid over a 200m×200m field, high link gains, sink at the center.
[[nodiscard]] Topology make_tight_grid(std::uint64_t seed);

/// Paper Sec. IV-A1, "Sparse-linear": 225 nodes in a 5×45 grid over a
/// 60m×600m field, low link gains, sink at one endpoint of the field.
[[nodiscard]] Topology make_sparse_linear(std::uint64_t seed);

/// Paper Sec. IV-B1: the indoor testbed — 40 TelosB nodes (22 on a 2×11
/// board, 18 scattered around it), CC2420 power level 2, up to 6 hops.
[[nodiscard]] Topology make_indoor_testbed(std::uint64_t seed);

/// Uniform-random deployment over a square field (general-purpose scenarios
/// and property tests).
[[nodiscard]] Topology make_uniform_random(std::size_t nodes, double side_m,
                                           std::uint64_t seed);

/// A straight line of `nodes` nodes with fixed spacing — the minimal
/// multi-hop scenario used by unit and integration tests.
[[nodiscard]] Topology make_line(std::size_t nodes, double spacing_m);

/// Whether every node can reach the sink over links whose mean path loss
/// stays within the reception budget plus `margin_db` (negative margin
/// demands headroom). Shadowing is included since it is part of the
/// topology's gain table.
[[nodiscard]] bool is_connected(const Topology& topo, std::uint64_t seed,
                                double margin_db = -3.0);

/// Uniform-random deployment that is guaranteed connected: retries seeds
/// (derived from `seed`) until `is_connected` holds. For tests and
/// experiments that must not be confounded by partitioned fields.
[[nodiscard]] Topology make_connected_random(std::size_t nodes, double side_m,
                                             std::uint64_t seed);

}  // namespace telea
