#include "core/forwarding.hpp"

#include <algorithm>

#include "util/field.hpp"
#include "util/logging.hpp"

namespace telea {

Forwarding::Forwarding(Simulator& sim, LplMac& mac, CtpNode& ctp,
                       Addressing& addressing, const ForwardingConfig& config)
    : sim_(&sim),
      mac_(&mac),
      ctp_(&ctp),
      addressing_(&addressing),
      config_(config) {}

Forwarding::PacketState& Forwarding::state_for(
    const msg::ControlPacket& packet) {
  PacketState& st = states_[packet.seqno];
  return st;
}

std::size_t Forwarding::own_match_len(const msg::ControlPacket& p) const {
  return own_match_toward(route_code(p));
}

std::optional<Forwarding::Candidate> Forwarding::pick_expected_relay(
    const msg::ControlPacket& p, std::size_t floor,
    std::vector<NodeId>* all) const {
  return pick_for_route(route_code(p), floor, all);
}

std::optional<Forwarding::Candidate> Forwarding::pick_relay(
    const PathCode& route, std::size_t floor) const {
  return pick_for_route(route, floor, nullptr);
}

std::size_t Forwarding::own_match_toward(const PathCode& route) const {
  std::size_t best = 0;
  const PathCode& code = addressing_->code();
  if (!code.empty() && code.is_prefix_of(route)) best = code.size();
  if (config_.match_old_codes) {
    const PathCode& old = addressing_->old_code();
    if (!old.empty() && old.is_prefix_of(route)) {
      best = std::max(best, old.size());
    }
  }
  return best;
}

std::optional<Forwarding::Candidate> Forwarding::pick_for_route(
    const PathCode& route, std::size_t floor,
    std::vector<NodeId>* all) const {
  const NeighborCodeTable& neighbors = addressing_->neighbors();

  std::optional<Candidate> best_gated;
  std::optional<Candidate> best_any;
  auto consider = [&](NodeId id, const PathCode& code) {
    if (id == mac_->id() || code.empty()) return;
    if (neighbors.is_unreachable(id)) return;
    if (!code.is_prefix_of(route)) return;
    if (code.size() <= floor) return;
    if (all != nullptr) all->push_back(id);
    // Least-progress candidate wins (Fig. 4c): it maximizes the set of nodes
    // that can still opportunistically beat the expected relay.
    if (!best_any.has_value() || code.size() < best_any->code_len) {
      best_any = Candidate{id, code.size()};
    }
    // Prefer candidates the link estimator vouches for: a code learned from
    // one lucky TeleBeacon does not make a usable relay.
    if (ctp_->estimator().etx10(id) <= config_.relay_quality_etx10 &&
        (!best_gated.has_value() || code.size() < best_gated->code_len)) {
      best_gated = Candidate{id, code.size()};
    }
  };

  for (const auto& e : addressing_->children().entries()) {
    consider(e.child, e.new_code);
    if (config_.match_old_codes) consider(e.child, e.old_code);
  }
  for (const auto& e : neighbors.entries()) {
    consider(e.neighbor, e.new_code);
    if (config_.match_old_codes) consider(e.neighbor, e.old_code);
  }
  return best_gated.has_value() ? best_gated : best_any;
}

bool Forwarding::neighbor_can_progress(const msg::ControlPacket& p) const {
  // Condition (3) claims commit us to forwarding: only claim on the strength
  // of a neighbor the link estimator vouches for.
  const auto candidate = pick_expected_relay(p, p.expected_relay_code_len);
  return candidate.has_value() &&
         ctp_->estimator().etx10(candidate->id) <= config_.relay_quality_etx10;
}

std::optional<std::uint32_t> Forwarding::send_control(NodeId dest,
                                                      const PathCode& dest_code,
                                                      std::uint16_t command) {
  msg::ControlPacket packet;
  packet.dest = dest;
  packet.dest_code = dest_code;
  packet.seqno = next_seqno_++;
  packet.command = command;
  packet.mode = msg::ControlMode::kOpportunistic;

  PacketState& st = states_[packet.seqno];
  st.packet = packet;
  st.holding = true;
  st.came_from = kInvalidNode;
  st.floor = own_match_len(packet);
  forward(packet.seqno);
  return packet.seqno;
}

bool Forwarding::send_control_detour(NodeId dest, const PathCode& dest_code,
                                     NodeId via, const PathCode& via_code,
                                     std::uint16_t command,
                                     std::uint32_t seqno) {
  msg::ControlPacket packet;
  packet.dest = dest;
  packet.dest_code = dest_code;
  packet.seqno = seqno;
  packet.command = command;
  packet.mode = msg::ControlMode::kOpportunistic;
  packet.detour_via = via;
  packet.detour_code = via_code;

  PacketState& st = states_[packet.seqno];
  st.packet = packet;
  st.holding = true;
  st.done = false;
  st.attempts = 0;
  st.came_from = kInvalidNode;
  st.floor = own_match_len(packet);
  forward(packet.seqno);
  return true;
}

AckDecision Forwarding::handle_control(NodeId from,
                                       const msg::ControlPacket& packet,
                                       bool for_me) {
  const NodeId me = mac_->id();
  PacketState& st = state_for(packet);
  addressing_->neighbors().expire_unreachable(sim_->now(),
                                              config_.unreachable_timeout);

  // --- destination / detour direct delivery -------------------------------
  if (packet.dest == me) {
    const bool direct = packet.mode == msg::ControlMode::kDirect;
    if (!st.delivered_here) {
      st.delivered_here = true;
      st.done = true;
      msg::ControlPacket arrived = packet;
      arrived.hops_so_far = field::u8(packet.hops_so_far + 1);
      deliver(from, arrived, direct);
    }
    return AckDecision::kAcceptAndAck;
  }
  if (packet.mode == msg::ControlMode::kDirect) {
    // Direct unicast leg addressed to someone else: not ours to claim.
    return for_me ? AckDecision::kAcceptAndAck : AckDecision::kIgnore;
  }

  // --- suppression ---------------------------------------------------------
  // Finished is final for this copy of the packet — but a re-routed attempt
  // (the origin escalated to a different detour waypoint, reusing the seqno
  // for destination dedup) is a new instruction, not a resurrection.
  if (st.finished && packet.detour_via == st.packet.detour_via) {
    return AckDecision::kIgnore;
  }
  if (st.holding) {
    // Someone at least as far along is carrying the packet: drop our copy
    // (including any transmission already handed to the MAC).
    if (packet.expected_relay_code_len >= st.last_sent_expected_len &&
        from != me) {
      st.holding = false;
      ++stats_.suppressions;
      TELEA_TRACE_EVENT(tracer_, sim_->now(), me, TraceEvent::kSuppress,
                        packet.seqno, from);
      if (flight_ != nullptr) {
        flight_->record(sim_->now(), FlightEvent::kSuppress, packet.seqno,
                        from);
      }
      if (st.mac_token.has_value()) {
        mac_->cancel_send(*st.mac_token);
        st.mac_token.reset();
      }
    }
    return AckDecision::kIgnore;
  }

  // --- claim conditions (Sec. III-C) --------------------------------------
  const NodeId target = route_target(packet);
  bool claim_it = false;
  TraceReason claim_reason = TraceReason::kNone;
  if (me == target) {
    claim_it = true;  // detour waypoint: we finish with a direct unicast
    claim_reason = TraceReason::kExpectedRelay;
  } else if (me == packet.expected_relay) {
    claim_it = true;  // condition (1)
    claim_reason = TraceReason::kExpectedRelay;
  } else if (config_.opportunistic) {
    const std::size_t mine = own_match_len(packet);
    if (mine > packet.expected_relay_code_len) {
      claim_it = true;  // condition (2)
      claim_reason = TraceReason::kLongerPrefix;
    } else if (config_.neighbor_assist && neighbor_can_progress(packet)) {
      claim_it = true;  // condition (3)
      claim_reason = TraceReason::kNeighborPrefix;
    }
  }

  if (!claim_it) return AckDecision::kIgnore;
  TELEA_DEBUG("tele.fwd") << "node " << me << " seq " << packet.seqno
                          << " claims from " << from << " (expected "
                          << packet.expected_relay << " len "
                          << int{packet.expected_relay_code_len} << ")";
  if (st.done) {
    // We already moved this packet downstream once. Re-claim only a clearly
    // regressed copy (a backtrack resurrection), and never within the
    // cooldown — otherwise lagging duplicates would multiply.
    const bool regressed =
        packet.expected_relay_code_len < st.last_sent_expected_len;
    const SimTime cooldown = 2 * mac_->config().wake_interval;
    if (!regressed || sim_->now() < st.last_done_at + cooldown) {
      return AckDecision::kIgnore;
    }
  }
  TELEA_TRACE_EVENT(tracer_, sim_->now(), me, TraceEvent::kForwardDecision,
                    packet.seqno, from, claim_reason);
  if (auditor_ != nullptr) {
    auditor_->on_claim(me, packet, claim_reason, /*rescue=*/false);
  }
  claim(from, packet);
  return AckDecision::kAcceptAndAck;
}

void Forwarding::claim(NodeId from, const msg::ControlPacket& packet) {
  PacketState& st = states_[packet.seqno];
  st.packet = packet;
  st.packet.hops_so_far = field::u8(packet.hops_so_far + 1);
  st.holding = true;
  st.done = false;
  // Every caller gates claims on the finished latch; reaching here means the
  // copy was judged materially new (e.g. a re-routed detour), so un-latch.
  st.finished = false;
  st.attempts = 0;
  st.came_from = from;
  // The progress we promised to beat: our own on-path depth, or — when
  // assisting from off the path (condition 3) — the expectation we outbid.
  st.floor = std::max<std::size_t>(own_match_len(packet),
                                   packet.expected_relay_code_len);
  // Until we transmit, our suppression threshold is the progress any forward
  // of ours would guarantee (floor+1) — otherwise an overheard *regressed*
  // copy would cancel a fresher claim.
  st.last_sent_expected_len =
      field::u8(std::min<std::size_t>(st.floor + 1, 0xFF));
  st.dup_acks = 0;
  st.defer_deadline = sim_->now() + config_.claim_defer;
  ++stats_.claims;
  if (flight_ != nullptr) {
    flight_->record(sim_->now(), FlightEvent::kForwardDecision, packet.seqno,
                    from == kInvalidNode ? 0 : from);
  }
  if (on_claimed) on_claimed(st.packet);
  // Guard delay before forwarding: stay in receive so the upstream sender
  // (which may have missed our ack) hears a re-ack and stops, instead of
  // recruiting a second claimant while we are deaf mid-transmission.
  const std::uint32_t seqno = packet.seqno;
  sim_->schedule_in(config_.claim_defer, [this, seqno] { defer_check(seqno); },
                    "fwd.defer");
}

void Forwarding::defer_check(std::uint32_t seqno) {
  auto it = states_.find(seqno);
  if (it == states_.end()) return;
  PacketState& st = it->second;
  if (!st.holding || st.mac_token.has_value() || st.attempts > 0) return;
  const SimTime now = sim_->now();
  if (now < st.defer_deadline) {
    // Duplicates extended the quiet period: re-check at the new deadline.
    sim_->schedule_at(st.defer_deadline, [this, seqno] { defer_check(seqno); },
                      "fwd.defer");
    return;
  }
  if (st.dup_acks >= config_.claim_yield_dups) {
    // The sender never took any of our acknowledgements: the reverse link
    // is effectively one-way and another relay has (or will get) the
    // packet. Yield.
    TELEA_DEBUG("tele.fwd") << "node " << mac_->id() << " seq " << seqno
                            << " yields claim after " << st.dup_acks
                            << " ignored re-acks";
    st.holding = false;
    st.done = false;
    ++stats_.yields;
    TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(), TraceEvent::kSuppress,
                      seqno, st.came_from, TraceReason::kRetryExhausted);
    if (flight_ != nullptr) {
      flight_->record(sim_->now(), FlightEvent::kSuppress, seqno,
                      st.came_from == kInvalidNode ? 0 : st.came_from);
    }
    return;
  }
  forward(seqno);
}

void Forwarding::note_duplicate(NodeId from, const msg::ControlPacket& packet) {
  auto it = states_.find(packet.seqno);
  if (it == states_.end()) return;
  PacketState& st = it->second;
  if (!st.holding || st.mac_token.has_value() || st.attempts > 0) return;
  if (from != st.came_from) return;
  ++st.dup_acks;
  ++stats_.duplicates;
  st.defer_deadline = sim_->now() + config_.claim_defer;
}

void Forwarding::deliver(NodeId from, const msg::ControlPacket& packet,
                         bool direct) {
  ++stats_.deliveries;
  TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(),
                    TraceEvent::kControlDelivered, packet.seqno,
                    from == mac_->id() ? 0 : from);
  if (auditor_ != nullptr) {
    auditor_->on_final_delivery(mac_->id(), packet, direct);
  }
  if (on_delivered) on_delivered(packet, direct);
}

void Forwarding::forward(std::uint32_t seqno) {
  auto it = states_.find(seqno);
  if (it == states_.end() || !it->second.holding) return;
  PacketState& st = it->second;
  // Lazy lease check: the unreachable_timeout safety valve must not depend
  // on a routing beacon happening to arrive (steady-state trickle intervals
  // run to minutes) — expire stale marks at every forwarding decision too.
  addressing_->neighbors().expire_unreachable(sim_->now(),
                                              config_.unreachable_timeout);
  const NodeId me = mac_->id();
  msg::ControlPacket packet = st.packet;

  // Detour waypoint: deterministic unicast to the destination (III-C4).
  if (route_target(packet) == me && packet.detour_via == me) {
    packet.mode = msg::ControlMode::kDirect;
    Frame frame;
    frame.dst = packet.dest;
    frame.payload = packet;
    st.mac_token = mac_->send_cancellable(std::move(frame),
                                          [this, seqno](const SendResult& r) {
                                            on_forward_result(seqno, r);
                                          });
    if (st.mac_token.has_value()) {
      ++stats_.forwards;
    } else {
      sim_->schedule_in(kSecond, [this, seqno] { forward(seqno); },
                        "fwd.retry");
    }
    return;
  }

  // Pick the expected relay: the least-progress known on-path node past the
  // progress floor fixed at claim time (stable across retries).
  const auto candidate = pick_expected_relay(packet, st.floor);
  if (!candidate.has_value()) {
    backtrack(seqno, TraceReason::kNeighborUnreachable);
    return;
  }
  packet.expected_relay = candidate->id;
  packet.expected_relay_code_len = field::u8(candidate->code_len);
  st.last_sent_expected_len = packet.expected_relay_code_len;
  st.packet.expected_relay = packet.expected_relay;
  st.packet.expected_relay_code_len = packet.expected_relay_code_len;

  TELEA_DEBUG("tele.fwd") << "node " << mac_->id() << " seq " << packet.seqno
                          << " attempt " << st.attempts << " expected "
                          << packet.expected_relay << " len "
                          << int{packet.expected_relay_code_len} << " floor "
                          << st.floor;

  Frame frame;
  frame.dst = kBroadcastNode;  // link-layer anycast (the medium acks it)
  frame.payload = packet;
  st.mac_token = mac_->send_cancellable(std::move(frame),
                                        [this, seqno](const SendResult& r) {
                                          on_forward_result(seqno, r);
                                        });
  if (st.mac_token.has_value()) {
    ++stats_.forwards;
  } else {
    sim_->schedule_in(kSecond, [this, seqno] { forward(seqno); }, "fwd.retry");
  }
}

void Forwarding::on_forward_result(std::uint32_t seqno,
                                   const SendResult& result) {
  auto it = states_.find(seqno);
  if (it == states_.end()) return;
  PacketState& st = it->second;
  if (!st.holding) return;  // suppressed while the send was in flight

  TELEA_DEBUG("tele.fwd") << "node " << mac_->id() << " seq " << seqno
                          << (result.success ? " acked by " : " failed, acker ")
                          << result.acker << " copies " << result.copies;
  st.mac_token.reset();
  // Anycast outcomes are link evidence: a full-sweep failure means the
  // expected relay (and every eligible sibling) never decoded us — exactly
  // the asymmetric-link signal the estimator needs; a success credits the
  // actual claimant.
  if (result.success && result.acker != kInvalidNode) {
    ctp_->estimator().on_data_tx(result.acker, true);
  } else if (!result.success &&
             st.packet.expected_relay != kInvalidNode) {
    ctp_->estimator().on_data_tx(st.packet.expected_relay, false);
  }

  if (result.success) {
    st.holding = false;
    st.done = true;
    st.last_done_at = sim_->now();
    return;
  }

  ++st.attempts;
  if (flight_ != nullptr) {
    flight_->record(sim_->now(), FlightEvent::kAckTimeout, seqno,
                    st.packet.expected_relay == kInvalidNode
                        ? 0
                        : st.packet.expected_relay);
  }
  if (st.attempts < config_.forward_retries) {
    forward(seqno);
    return;
  }
  backtrack(seqno, TraceReason::kRetryExhausted);
}

void Forwarding::backtrack(std::uint32_t seqno, TraceReason reason) {
  PacketState& st = states_[seqno];
  st.holding = false;
  TELEA_DEBUG("tele.fwd") << "node " << mac_->id() << " seq " << seqno
                          << " backtracks to " << st.came_from;
  TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(), TraceEvent::kBacktrack,
                    seqno, st.came_from, reason);
  if (flight_ != nullptr) {
    flight_->record(sim_->now(), FlightEvent::kBacktrack, seqno,
                    st.came_from == kInvalidNode ? 0 : st.came_from);
  }

  // Mark every on-path candidate we could not reach as unreachable until
  // their next routing beacon (Sec. III-C3).
  std::vector<NodeId> blocked;
  (void)pick_expected_relay(st.packet, own_match_len(st.packet), &blocked);
  for (NodeId n : blocked) {
    addressing_->neighbors().mark_unreachable(n, sim_->now());
    st.blocked.push_back(n);
  }

  if (st.came_from == kInvalidNode) {
    // We are the origin. The paper's sink retries once after a feedback
    // round (Fig. 5a) before engaging the countermeasure: clear the marks
    // this packet set and go again.
    if (st.origin_retries < config_.origin_retries) {
      ++st.origin_retries;
      ++stats_.origin_retries;
      const std::uint32_t seq = seqno;
      sim_->schedule_in(config_.origin_retry_delay, [this, seq] {
        auto it = states_.find(seq);
        if (it == states_.end()) return;
        PacketState& state = it->second;
        if (state.finished || state.done || state.holding) return;
        // A fresh attempt from the origin: forget every unreachable verdict
        // (they were learned under conditions that may have passed — the
        // paper's sink re-tries through the previously failed relay).
        for (const auto& e : addressing_->neighbors().entries()) {
          addressing_->neighbors().mark_reachable(e.neighbor);
        }
        state.blocked.clear();
        state.holding = true;
        state.attempts = 0;
        forward(seq);
      }, "fwd.origin_retry");
      return;
    }
    ++stats_.origin_failures;
    if (flight_ != nullptr) {
      flight_->record(sim_->now(), FlightEvent::kGiveUp, seqno,
                      st.origin_retries);
    }
    if (on_origin_stuck) on_origin_stuck(st.packet);
    return;
  }
  if (!config_.backtracking) return;
  // Bounded: an undeliverable packet must not ping-pong between two relays
  // indefinitely (each re-holding, failing, and returning it).
  if (st.backtrack_rounds >= config_.max_backtracks) {
    TELEA_DEBUG("tele.fwd") << "node " << mac_->id() << " seq " << seqno
                            << " abandons after " << st.backtrack_rounds
                            << " backtrack rounds";
    // Out of budget is still a verdict. Hand the packet upstream one final
    // time — without it, the packet dies silently between two relays and the
    // origin waits forever for an ack that cannot come. The finished flag
    // stops this node from ever re-claiming the doomed packet, so no
    // ping-pong: each node forwards the verdict at most once.
    if (!st.finished) {
      send_feedback(seqno, /*attempt=*/0);
      st.finished = true;
    }
    return;
  }
  ++st.backtrack_rounds;
  ++stats_.backtracks;
  send_feedback(seqno, /*attempt=*/0);
}

void Forwarding::send_feedback(std::uint32_t seqno, unsigned attempt) {
  auto it = states_.find(seqno);
  if (it == states_.end()) return;
  PacketState& st = it->second;
  if (st.finished || st.holding || st.came_from == kInvalidNode) return;

  msg::FeedbackPacket feedback;
  feedback.packet = st.packet;
  feedback.unreachable_via = mac_->id();
  Frame frame;
  frame.dst = st.came_from;
  frame.payload = feedback;
  mac_->send(std::move(frame),
             [this, seqno, attempt](const SendResult& result) {
               if (result.success) return;
               // A lost feedback silently kills the packet: retry the
               // upstream return a couple of times before giving up.
               if (attempt + 1 < config_.forward_retries + 1) {
                 send_feedback(seqno, attempt + 1);
               }
             });
}

AckDecision Forwarding::handle_feedback(NodeId from,
                                        const msg::FeedbackPacket& feedback,
                                        bool for_me) {
  const msg::ControlPacket& packet = feedback.packet;
  PacketState& st = state_for(packet);
  addressing_->neighbors().expire_unreachable(sim_->now(),
                                              config_.unreachable_timeout);

  if (for_me) {
    // The downstream relay we handed the packet to could not progress: mark
    // it unreachable and try an alternative ourselves (Fig. 5a at S) — but
    // only within our own backtrack budget, or two relays bounce an
    // undeliverable packet forever.
    if (st.backtrack_rounds >= config_.max_backtracks) {
      // Budget spent here too: relay the verdict toward the origin instead
      // of absorbing it — a silent drop would leave the sink waiting for an
      // ack that can never come.
      if (st.came_from != kInvalidNode && !st.finished) {
        st.holding = false;
        send_feedback(packet.seqno, /*attempt=*/0);
        st.finished = true;
      }
      return AckDecision::kAcceptAndAck;
    }
    addressing_->neighbors().mark_unreachable(from, sim_->now());
    st.packet = packet;
    st.packet.hops_so_far = field::u8(packet.hops_so_far + 1);
    st.holding = true;
    st.done = false;
    st.attempts = 0;
    forward(packet.seqno);
    return AckDecision::kAcceptAndAck;
  }

  // Overhearing another relay's feedback (Fig. 5a at C): if we can still make
  // progress, claim the packet — this both resumes downward forwarding and
  // stops the feedback transmission. Unlike a fresh control packet, being
  // *at* the expected progress qualifies here: the failed relay's expected
  // relay (C itself) is exactly who should take over.
  if (st.holding) return AckDecision::kIgnore;
  if (st.finished) return AckDecision::kIgnore;  // we already abandoned it
  if (!config_.opportunistic) return AckDecision::kIgnore;
  const std::size_t mine = own_match_len(packet);
  const bool can_progress =
      packet.dest == mac_->id() || packet.expected_relay == mac_->id() ||
      (mine > 0 && mine >= packet.expected_relay_code_len) ||
      (config_.neighbor_assist && neighbor_can_progress(packet));
  if (!can_progress) return AckDecision::kIgnore;
  // The sender just declared itself stuck either way.
  addressing_->neighbors().mark_unreachable(from, sim_->now());
  // A rescue must be real: our ack stops the feedback, so claiming while
  // every downstream candidate is marked unreachable only destroys the
  // verdict on its way to the origin. (Delivering directly is always real.)
  if (packet.dest != mac_->id() && route_target(packet) != mac_->id() &&
      !pick_expected_relay(packet,
                           std::max<std::size_t>(
                               mine, packet.expected_relay_code_len))
           .has_value()) {
    return AckDecision::kIgnore;
  }
  ++stats_.feedback_claims;
  const TraceReason rescue_reason =
      (packet.dest == mac_->id() || packet.expected_relay == mac_->id())
          ? TraceReason::kExpectedRelay
          : (mine > 0 && mine >= packet.expected_relay_code_len)
                ? TraceReason::kLongerPrefix
                : TraceReason::kNeighborPrefix;
  TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(),
                    TraceEvent::kForwardDecision, packet.seqno, from,
                    rescue_reason);
  if (auditor_ != nullptr) {
    auditor_->on_claim(mac_->id(), packet, rescue_reason, /*rescue=*/true);
  }
  claim(from, packet);
  return AckDecision::kAcceptAndAck;
}

void Forwarding::on_beacon_heard(NodeId from) {
  addressing_->neighbors().mark_reachable(from);
  addressing_->neighbors().expire_unreachable(sim_->now(),
                                              config_.unreachable_timeout);
}

void Forwarding::reset() {
  // Collect in-flight tokens first, then clear, then cancel: cancellation
  // callbacks fire synchronously and must find no state to mutate. Scheduled
  // defer/forward events for the wiped seqnos no-op on the states_ lookup.
  std::vector<std::uint32_t> tokens;
  for (const auto& [seqno, st] : states_) {
    if (st.mac_token.has_value()) tokens.push_back(*st.mac_token);
  }
  states_.clear();
  for (const std::uint32_t token : tokens) mac_->cancel_send(token);
}

void Forwarding::note_ack_overheard(std::uint32_t seqno) {
  auto it = states_.find(seqno);
  PacketState& st = it != states_.end() ? it->second : states_[seqno];
  st.finished = true;
  st.done = true;
  st.holding = false;
  if (st.mac_token.has_value()) {
    mac_->cancel_send(*st.mac_token);
    st.mac_token.reset();
  }
}

}  // namespace telea
