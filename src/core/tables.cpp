#include "core/tables.hpp"

#include <algorithm>

namespace telea {

const ChildTable::Entry* ChildTable::find(NodeId child) const noexcept {
  for (const auto& e : entries_) {
    if (e.child == child) return &e;
  }
  return nullptr;
}

ChildTable::Entry* ChildTable::find(NodeId child) noexcept {
  for (auto& e : entries_) {
    if (e.child == child) return &e;
  }
  return nullptr;
}

bool ChildTable::position_taken(std::uint32_t position) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [position](const Entry& e) {
                       return e.position == position;
                     });
}

std::optional<std::uint32_t> ChildTable::free_position(
    std::uint8_t space_bits, std::uint32_t first) const noexcept {
  if (space_bits >= 32) return std::nullopt;
  const std::uint32_t limit = 1u << space_bits;
  for (std::uint32_t p = first; p < limit; ++p) {
    if (!position_taken(p)) return p;
  }
  return std::nullopt;
}

ChildTable::Entry& ChildTable::upsert(NodeId child, std::uint32_t position,
                                      const PathCode& code) {
  if (Entry* e = find(child); e != nullptr) {
    if (e->new_code != code) e->old_code = e->new_code;
    e->position = position;
    e->new_code = code;
    e->confirmed = false;
    return *e;
  }
  entries_.push_back(Entry{child, position, code, PathCode{}, false});
  return entries_.back();
}

void ChildTable::remove(NodeId child) {
  std::erase_if(entries_, [child](const Entry& e) { return e.child == child; });
}

void ChildTable::rederive_codes(const PathCode& parent_code,
                                std::uint8_t space_bits) {
  for (auto& e : entries_) {
    const PathCode updated =
        make_child_code(parent_code, e.position, space_bits);
    if (updated != e.new_code) {
      e.old_code = e.new_code;
      e.new_code = updated;
    }
  }
}

const NeighborCodeTable::Entry* NeighborCodeTable::find(
    NodeId neighbor) const noexcept {
  for (const auto& e : entries_) {
    if (e.neighbor == neighbor) return &e;
  }
  return nullptr;
}

NeighborCodeTable::Entry& NeighborCodeTable::find_or_insert(NodeId neighbor) {
  for (auto& e : entries_) {
    if (e.neighbor == neighbor) return e;
  }
  entries_.push_back(Entry{});
  entries_.back().neighbor = neighbor;
  return entries_.back();
}

void NeighborCodeTable::observe(NodeId neighbor, const PathCode& code,
                                SimTime now) {
  if (code.empty()) return;
  Entry& e = find_or_insert(neighbor);
  if (e.new_code == code) return;
  if (!e.new_code.empty()) {
    e.old_code = e.new_code;
    e.code_changed_at = now;
  }
  e.new_code = code;
}

void NeighborCodeTable::mark_unreachable(NodeId neighbor, SimTime now) {
  Entry& e = find_or_insert(neighbor);
  // The lease runs from the FIRST failure: re-marking an already-marked
  // neighbor (every retry that skips it re-reports it blocked) must not
  // extend the lease, or a retry cadence shorter than the timeout keeps the
  // mark alive forever and the unreachable_timeout safety valve never fires.
  if (!e.unreachable) e.unreachable_since = now;
  e.unreachable = true;
}

void NeighborCodeTable::mark_reachable(NodeId neighbor) {
  for (auto& e : entries_) {
    if (e.neighbor == neighbor) {
      e.unreachable = false;
      return;
    }
  }
}

bool NeighborCodeTable::is_unreachable(NodeId neighbor) const noexcept {
  const Entry* e = find(neighbor);
  return e != nullptr && e->unreachable;
}

void NeighborCodeTable::expire_unreachable(SimTime now, SimTime timeout) {
  for (auto& e : entries_) {
    if (e.unreachable && e.unreachable_since + timeout <= now) {
      e.unreachable = false;
    }
  }
}

void NeighborCodeTable::remove(NodeId neighbor) {
  std::erase_if(entries_, [neighbor](const Entry& e) {
    return e.neighbor == neighbor;
  });
}

}  // namespace telea
