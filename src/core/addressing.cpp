#include "core/addressing.hpp"

#include <algorithm>

#include "util/field.hpp"
#include "util/logging.hpp"

namespace telea {

Addressing::Addressing(Simulator& sim, LplMac& mac, CtpNode& ctp,
                       const AddressingConfig& config)
    : sim_(&sim),
      mac_(&mac),
      ctp_(&ctp),
      config_(config),
      stability_timer_(sim),
      request_timer_(sim),
      beacon_timer_(sim) {
  stability_timer_.set_callback([this] { stability_check(); });
  request_timer_.set_callback([this] { request_position_check(); });
  beacon_timer_.set_callback([this] { send_tele_beacon(); });
}

void Addressing::start() {
  stability_timer_.start_periodic(config_.wake_interval);
  request_timer_.start_periodic(config_.request_retry);
}

void Addressing::reset() {
  stability_timer_.stop();
  request_timer_.stop();
  beacon_timer_.stop();
  const bool had_code = has_code();
  code_ = PathCode{};
  old_code_ = PathCode{};
  code_parent_ = kInvalidNode;
  have_position_ = false;
  position_ = 0;
  space_bits_ = 0;
  allocated_ = false;
  child_table_.clear();
  neighbors_.clear();
  discovered_.clear();
  trigger_at_.reset();
  code_at_.reset();
  last_new_child_ = 0;
  last_request_at_ = 0;
  parent_send_failures_ = 0;
  beacon_pending_ = false;
  pending_beacon_repeats_ = 0;
  if (had_code && on_code_changed) on_code_changed();
}

void Addressing::on_route_found() {
  if (trigger_at_.has_value()) return;
  trigger_at_ = sim_->now();
  if (ctp_->is_root() && code_.empty()) {
    // The sink seeds the coding tree: code "0", one valid bit (Sec. III-B1).
    set_code(sink_code());
  }
}

void Addressing::set_code(const PathCode& code) {
  if (code == code_ || code.empty()) return;
  if (!code_.empty()) old_code_ = code_;
  code_ = code;
  ++stats_.code_changes;
  if (!code_at_.has_value()) code_at_ = sim_->now();
  // Our prefix changed (or just arrived), so every allocated child's code
  // (re-)derives from it: publish downstream promptly with TeleAdjusting
  // beacons (III-B6) — this is the level-by-level code cascade.
  if (!child_table_.entries().empty() && space_bits_ > 0) {
    child_table_.rederive_codes(code_, space_bits_);
    pending_beacon_repeats_ = std::max(pending_beacon_repeats_, 2u);
    schedule_tele_beacon();
  }
  if (on_code_changed) on_code_changed();
}

void Addressing::on_parent_changed(NodeId old_parent, NodeId new_parent) {
  (void)old_parent;
  (void)new_parent;
  // Our position was allocated by the old parent; it means nothing under the
  // new one. Keep operating with the stale code (neighbors retain it as our
  // old code) until the new parent assigns a position — the periodic request
  // timer drives that.
  have_position_ = false;
  position_ = 0;
}

void Addressing::on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon) {
  const NodeId me = mac_->id();

  if (beacon.parent == me) {
    // `from` claims us as its parent: it is a child on the reverse tree.
    if (std::find(discovered_.begin(), discovered_.end(), from) ==
        discovered_.end()) {
      discovered_.push_back(from);
      last_new_child_ = sim_->now();
    }
    if (allocated_ && has_code()) {
      // Position maintenance, Alg. 2 lines 1-6.
      ChildTable::Entry* e = child_table_.find(from);
      if (beacon.has_position_claim) {
        // The claim carries the child's valid code length: a stale value
        // (e.g. the child missed a space extension or our own prefix
        // change) is repaired with a fresh allocation acknowledgement.
        const std::size_t expected_len = code_.size() + space_bits_;
        if (e != nullptr && e->position == beacon.claimed_position &&
            beacon.claimed_code_len == expected_len) {
          e->confirmed = true;
        } else {
          // Claim mismatch, stale code width, or unknown child:
          // (re)allocate deterministically and acknowledge.
          allocate_and_ack(from);
        }
      } else if (e == nullptr) {
        // Child without any position: allocate one proactively.
        allocate_and_ack(from);
      }
    }
  } else {
    // A node that stopped claiming us is no longer our child.
    if (child_table_.find(from) != nullptr && beacon.parent != me) {
      child_table_.remove(from);
      std::erase(discovered_, from);
    }
  }

  // Sibling claims tell us our parent has already allocated positions; if we
  // have none, ask for one (Sec. III-B4).
  if (from != me && beacon.parent == ctp_->parent() &&
      beacon.has_position_claim && !have_position_ &&
      ctp_->parent() != kInvalidNode) {
    request_position_check();
  }
}

void Addressing::stability_check() {
  // Note: deliberately NOT gated on having our own code. The 10-round
  // stability window runs from each node's own parent-found event, so
  // space sizing and position allocation proceed *concurrently* across the
  // whole network; only the code derivation itself cascades level by level
  // (one TeleAdjusting beacon per level) once prefixes arrive. Gating on
  // the prefix would serialize the stability windows along the tree depth
  // and blow the paper's <20-beacon convergence (Fig. 6c).
  if (allocated_ || discovered_.empty()) return;
  if (!trigger_at_.has_value()) return;
  const SimTime quiet_since = std::max(last_new_child_, *trigger_at_);
  const SimTime window =
      static_cast<SimTime>(config_.stable_rounds) * config_.wake_interval;
  if (sim_->now() >= quiet_since + window) {
    do_initial_allocation();
  }
}

void Addressing::do_initial_allocation() {
  // Algorithm 1: size the space for discovered plus potential hidden
  // children, then allocate deterministic positions in node-id order.
  const auto n = static_cast<std::uint32_t>(discovered_.size());
  space_bits_ = space_bits_for(n, config_.headroom,
                               config_.reserve_zero_position);
  std::vector<NodeId> ordered = discovered_;
  std::sort(ordered.begin(), ordered.end());
  std::uint32_t pos = first_position();
  for (NodeId child : ordered) {
    // Codes derive only once our own prefix exists; positions stand alone.
    child_table_.upsert(child, pos,
                        has_code() ? make_child_code(code_, pos, space_bits_)
                                   : PathCode{});
    ++pos;
  }
  allocated_ = true;
  // "Consecutively broadcast two TeleAdjusting beacons" (Alg. 1 line 10).
  pending_beacon_repeats_ = 2;
  schedule_tele_beacon();
}

void Addressing::allocate_and_ack(NodeId child) {
  if (!has_code()) return;
  if (space_bits_ == 0) {
    // A request arrived before our stability window closed: allocate a space
    // sized for what we know now (the incremental path handles growth).
    const auto n = static_cast<std::uint32_t>(
        std::max<std::size_t>(discovered_.size(), 1));
    space_bits_ = space_bits_for(n, config_.headroom,
                                 config_.reserve_zero_position);
    allocated_ = true;
  }
  ChildTable::Entry* e = child_table_.find(child);
  std::uint32_t pos;
  if (e != nullptr) {
    pos = e->position;
    e->confirmed = false;
  } else {
    auto free = child_table_.free_position(space_bits_, first_position());
    if (!free.has_value()) {
      extend_space();
      free = child_table_.free_position(space_bits_, first_position());
      if (!free.has_value()) return;  // space exhausted even after extension
    }
    pos = *free;
    child_table_.upsert(child, pos, make_child_code(code_, pos, space_bits_));
  }

  ++stats_.allocations;
  msg::AllocationAck ack;
  ack.position = pos;
  ack.space_bits = space_bits_;
  ack.parent_code = code_;
  Frame frame;
  frame.dst = child;
  frame.payload = ack;
  mac_->send(std::move(frame), [this, child](const SendResult& r) {
    ctp_->estimator().on_data_tx(child, r.success);
  });
  // Publish the updated table too: overhearing neighbors build their code
  // tables from TeleAdjusting beacons (Sec. III-B6), and condition (3) and
  // the Re-Tele detour depend on that knowledge.
  schedule_tele_beacon();
}

void Addressing::extend_space() {
  // Sec. III-B6: extend by one bit; positions stay, codes re-derive, and a
  // TeleAdjusting beacon notifies children (who iterate downstream).
  if (space_bits_ >= 31) return;
  ++stats_.space_extensions;
  ++space_bits_;
  child_table_.rederive_codes(code_, space_bits_);
  schedule_tele_beacon();
}

msg::TeleBeacon Addressing::build_tele_beacon() const {
  msg::TeleBeacon beacon;
  beacon.parent_code = code_;
  beacon.space_bits = space_bits_;
  beacon.entries.reserve(child_table_.entries().size());
  for (const auto& e : child_table_.entries()) {
    beacon.entries.push_back(
        msg::AllocationEntry{e.child, e.position, e.confirmed});
  }
  return beacon;
}

void Addressing::schedule_tele_beacon() {
  if (beacon_pending_) return;
  beacon_pending_ = true;
  if (pending_beacon_repeats_ == 0) pending_beacon_repeats_ = 1;
  beacon_timer_.start_one_shot(config_.beacon_coalesce);
}

void Addressing::send_tele_beacon() {
  beacon_pending_ = false;
  if (!has_code() || space_bits_ == 0) return;
  msg::TeleBeacon full = build_tele_beacon();
  // Chunk the allocation table across frames when it would exceed the
  // 802.15.4 MPDU (a child absent from one chunk merely re-requests, which
  // the parent answers idempotently). Worst case per chunk: a 31-bit parent
  // code (4 bytes + length octet) + space/flags, then 5 bytes per entry.
  constexpr std::size_t kBeaconFixedBytes = 7;
  constexpr std::size_t kEntryBytes = 5;
  constexpr std::size_t kEntriesPerBeacon = 18;
  static_assert(kBeaconFixedBytes + kEntriesPerBeacon * kEntryBytes <=
                    kMaxPayloadBytes,
                "allocation-table chunks must fit the 802.15.4 payload");
  std::size_t off = 0;
  do {
    msg::TeleBeacon chunk = full;
    chunk.entries.assign(
        full.entries.begin() + static_cast<std::ptrdiff_t>(off),
        full.entries.begin() +
            static_cast<std::ptrdiff_t>(std::min(
                off + kEntriesPerBeacon, full.entries.size())));
    Frame frame;
    frame.dst = kBroadcastNode;
    frame.payload = std::move(chunk);
    if (!mac_->send(std::move(frame), nullptr)) {
      // MAC queue full. A TeleAdjusting beacon carries table state that
      // must not be dropped silently (children would keep stale codes, e.g.
      // after a space extension) — retry after a backoff.
      beacon_pending_ = true;
      beacon_timer_.start_one_shot(4 * config_.beacon_coalesce);
      return;
    }
    ++stats_.tele_beacons_sent;
    off += kEntriesPerBeacon;
  } while (off < full.entries.size());
  if (pending_beacon_repeats_ > 1) {
    --pending_beacon_repeats_;
    beacon_pending_ = true;
    beacon_timer_.start_one_shot(config_.beacon_coalesce);
  } else {
    pending_beacon_repeats_ = 0;
  }
}

void Addressing::handle_tele_beacon(NodeId from, const msg::TeleBeacon& beacon) {
  const SimTime now = sim_->now();
  neighbors_.observe(from, beacon.parent_code, now);
  for (const auto& e : beacon.entries) {
    const PathCode derived =
        make_child_code(beacon.parent_code, e.position, beacon.space_bits);
    if (e.child != mac_->id()) neighbors_.observe(e.child, derived, now);
  }

  if (from != ctp_->parent()) return;

  // This is our parent's allocation table: find our entry (Alg. 3).
  const auto me = mac_->id();
  const auto it = std::find_if(
      beacon.entries.begin(), beacon.entries.end(),
      [me](const msg::AllocationEntry& e) { return e.child == me; });
  if (it == beacon.entries.end()) {
    // Parent has allocated but not to us: request a position (Alg. 3 l.13).
    if (!beacon.entries.empty() || beacon.space_bits > 0) {
      request_position_check();
    }
    return;
  }

  const PathCode derived =
      make_child_code(beacon.parent_code, it->position, beacon.space_bits);
  const bool changed = !have_position_ || position_ != it->position ||
                       derived != code_;
  have_position_ = true;
  position_ = it->position;
  code_parent_ = from;
  if (changed) {
    set_code(derived);
    send_confirm();
  } else if (!it->confirmed) {
    send_confirm();
  }
}

AckDecision Addressing::handle_position_request(NodeId from, bool for_me) {
  if (!for_me) return AckDecision::kIgnore;
  if (!has_code()) return AckDecision::kAcceptAndAck;  // can't serve yet
  ++stats_.requests_served;
  allocate_and_ack(from);
  return AckDecision::kAcceptAndAck;
}

AckDecision Addressing::handle_allocation_ack(NodeId from, NodeId link_dst,
                                              const msg::AllocationAck& ack,
                                              bool for_me) {
  const PathCode derived =
      make_child_code(ack.parent_code, ack.position, ack.space_bits);
  if (!for_me) {
    // Overhearing: learn the addressee's new code (Sec. III-B6 table).
    if (link_dst != kInvalidNode && link_dst != kBroadcastNode) {
      neighbors_.observe(link_dst, derived, sim_->now());
    }
    neighbors_.observe(from, ack.parent_code, sim_->now());
    return AckDecision::kIgnore;
  }
  if (from != ctp_->parent()) {
    // Stale ack from a previous parent: ack the link but ignore content.
    return AckDecision::kAcceptAndAck;
  }
  neighbors_.observe(from, ack.parent_code, sim_->now());
  have_position_ = true;
  position_ = ack.position;
  code_parent_ = from;
  set_code(derived);
  send_confirm();
  return AckDecision::kAcceptAndAck;
}

AckDecision Addressing::handle_confirm(NodeId from,
                                       const msg::ConfirmFrame& confirm,
                                       bool for_me) {
  if (!for_me) return AckDecision::kIgnore;
  if (ChildTable::Entry* e = child_table_.find(from);
      e != nullptr && e->position == confirm.position) {
    e->confirmed = true;
    ++stats_.confirms_received;
  }
  return AckDecision::kAcceptAndAck;
}

void Addressing::send_confirm() {
  if (ctp_->parent() == kInvalidNode) return;
  ++stats_.confirms_sent;
  msg::ConfirmFrame confirm;
  confirm.position = position_;
  Frame frame;
  frame.dst = ctp_->parent();
  frame.payload = confirm;
  send_to_parent(std::move(frame));
}

void Addressing::send_to_parent(Frame frame) {
  const NodeId parent = frame.dst;
  mac_->send(std::move(frame), [this, parent](const SendResult& r) {
    // Addressing unicasts double as link probes: they feed the estimator,
    // and a persistently one-way parent link (we hear its beacons, it never
    // acks us) triggers reselection — otherwise a node could request a
    // position forever into the void.
    ctp_->estimator().on_data_tx(parent, r.success);
    if (r.success) {
      parent_send_failures_ = 0;
      return;
    }
    if (parent != ctp_->parent()) return;
    if (++parent_send_failures_ >= 3) {
      parent_send_failures_ = 0;
      ctp_->report_parent_trouble();
    }
  });
}

void Addressing::request_position_check() {
  if (have_position_ || ctp_->is_root()) return;
  const NodeId parent = ctp_->parent();
  if (parent == kInvalidNode) return;
  // Paced: beacon-triggered requests must not flood the parent.
  if (last_request_at_ != 0 &&
      sim_->now() < last_request_at_ + config_.request_retry) {
    return;
  }
  last_request_at_ = sim_->now();
  ++stats_.requests_sent;
  msg::PositionRequest req;
  Frame frame;
  frame.dst = parent;
  frame.payload = req;
  send_to_parent(std::move(frame));
}

void Addressing::fill_beacon(msg::CtpBeacon& beacon) {
  if (have_position_ && ctp_->parent() != kInvalidNode) {
    beacon.has_position_claim = true;
    beacon.claimed_position = position_;
    beacon.claimed_code_len = field::u8(std::min<std::size_t>(code_.size(), 0xFF));
  }
}

bool Addressing::corrupt_code_bit(std::size_t bit) {
  if (code_.empty()) return false;
  const std::size_t i = bit % code_.size();
  code_.set_bit(i, !code_.bit(i));
  // Deliberately silent: no on_code_changed, no beacon, no table rederive.
  return true;
}

bool Addressing::corrupt_child_position(std::size_t slot,
                                        std::uint32_t position) {
  if (child_table_.size() == 0) return false;
  const NodeId child = child_table_.entries()[slot % child_table_.size()].child;
  ChildTable::Entry* entry = child_table_.find(child);
  if (entry == nullptr) return false;
  // The stored derived code is left stale on purpose, so the table no longer
  // agrees with its own position field — exactly the inconsistency the
  // parent-prefix invariant detects.
  entry->position = position;
  return true;
}

}  // namespace telea
