#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/path_code.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace telea {

/// The child node table of paper Table I: for every known child, its
/// allocated position, the codes derived from it (current and previous), and
/// the confirmation flag maintained by Algorithms 1-3.
class ChildTable {
 public:
  struct Entry {
    NodeId child = kInvalidNode;
    std::uint32_t position = 0;
    PathCode new_code;  // parent_code + position in the current space
    PathCode old_code;  // retained across code changes (Sec. III-B6)
    bool confirmed = false;
  };

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] const Entry* find(NodeId child) const noexcept;
  [[nodiscard]] Entry* find(NodeId child) noexcept;
  [[nodiscard]] bool position_taken(std::uint32_t position) const noexcept;

  /// Lowest free position in [first, 2^space_bits), or nullopt when full.
  [[nodiscard]] std::optional<std::uint32_t> free_position(
      std::uint8_t space_bits, std::uint32_t first) const noexcept;

  /// Inserts or overwrites the entry for `child`.
  Entry& upsert(NodeId child, std::uint32_t position, const PathCode& code);

  void remove(NodeId child);
  void clear() { entries_.clear(); }

  /// Re-derives every child's new_code after the parent's own code or space
  /// width changed (space extension / prefix change), pushing the previous
  /// code into old_code.
  void rederive_codes(const PathCode& parent_code, std::uint8_t space_bits);

 private:
  std::vector<Entry> entries_;
};

/// The neighbor code table of Sec. III-B6: codes of overheard neighbors (new
/// and old — the old code is retained for a period to keep control reliable
/// across code churn), plus the temporary unreachable flag the backtracking
/// mechanism sets (Sec. III-C3) until the neighbor's next routing beacon.
class NeighborCodeTable {
 public:
  struct Entry {
    NodeId neighbor = kInvalidNode;
    PathCode new_code;
    PathCode old_code;
    SimTime code_changed_at = 0;
    bool unreachable = false;
    SimTime unreachable_since = 0;
  };

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] const Entry* find(NodeId neighbor) const noexcept;

  /// Records an observed code; the previous one (if different) moves to
  /// old_code with the change timestamp.
  void observe(NodeId neighbor, const PathCode& code, SimTime now);

  /// Backtracking support (Sec. III-C3).
  void mark_unreachable(NodeId neighbor, SimTime now);
  /// Clears the unreachable flag — called when a routing beacon is heard
  /// from the neighbor again.
  void mark_reachable(NodeId neighbor);
  [[nodiscard]] bool is_unreachable(NodeId neighbor) const noexcept;

  /// Expires stale unreachable flags (safety valve if beacons are lost).
  void expire_unreachable(SimTime now, SimTime timeout);

  void remove(NodeId neighbor);
  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  Entry& find_or_insert(NodeId neighbor);
  std::vector<Entry> entries_;
};

}  // namespace telea
