#include "core/group_control.hpp"

#include "util/field.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"

namespace telea {

GroupControl::GroupControl(Simulator& sim, LplMac& mac, CtpNode& ctp,
                           Addressing& addressing, Forwarding& forwarding,
                           const GroupControlConfig& config)
    : sim_(&sim),
      mac_(&mac),
      ctp_(&ctp),
      addressing_(&addressing),
      forwarding_(&forwarding),
      config_(config) {}

std::uint32_t GroupControl::send_group(const std::vector<msg::GroupDest>& dests,
                                       std::uint16_t command) {
  const std::uint32_t group = next_group_seqno_++;
  ++stats_.groups_sent;
  std::vector<msg::GroupDest> live;
  for (const auto& d : dests) {
    if (!d.code.empty()) live.push_back(d);
  }
  dispatch(group, command, /*hops=*/0, std::move(live));
  return group;
}

AckDecision GroupControl::handle(NodeId from, const msg::GroupControlPacket& packet,
                                 bool for_me) {
  (void)for_me;  // group packets are always anycast
  (void)from;
  if (packet.dests.empty()) return AckDecision::kIgnore;
  GroupState& st = groups_[packet.group_seqno];

  // Is there anything in this sub-packet we have not already handled here?
  const bool lists_me = std::any_of(
      packet.dests.begin(), packet.dests.end(),
      [this](const msg::GroupDest& d) { return d.dest == mac_->id(); });
  std::vector<msg::GroupDest> fresh;
  for (const auto& d : packet.dests) {
    if (!st.processed_dests.contains(d.dest)) fresh.push_back(d);
  }
  if (fresh.empty()) {
    // Everything in this sub-packet was already handled here. Do NOT ack:
    // literal retransmissions are re-acked by the MAC's copy filter, so this
    // is a *different* operation (e.g. a downstream branch flowing past us)
    // — claiming it would strand the branch with a node that won't forward.
    return AckDecision::kIgnore;
  }

  // Claim conditions, evaluated against the lead destination (the group
  // analogue of Sec. III-C): expected relay, on-path improvement, or local
  // membership.
  const PathCode& lead = fresh.front().code;
  const std::size_t mine = forwarding_->own_match_toward(lead);
  const bool claim = lists_me || packet.expected_relay == mac_->id() ||
                     mine > packet.expected_relay_code_len;
  if (!claim) return AckDecision::kIgnore;

  ++stats_.claims;
  for (const auto& d : fresh) st.processed_dests.insert(d.dest);
  const auto hops = field::u8(packet.hops_so_far + 1);
  const std::uint32_t group = packet.group_seqno;
  const std::uint16_t command = packet.command;
  // Defer like the unicast plane: stay receptive while the upstream sender
  // finishes.
  sim_->schedule_in(config_.claim_defer,
                    [this, group, command, hops, dests = std::move(fresh)] {
                      dispatch(group, command, hops, dests);
                    });
  return AckDecision::kAcceptAndAck;
}

void GroupControl::dispatch(std::uint32_t group_seqno, std::uint16_t command,
                            std::uint8_t hops,
                            std::vector<msg::GroupDest> dests) {
  GroupState& st = groups_[group_seqno];

  // Local delivery.
  std::erase_if(dests, [&](const msg::GroupDest& d) {
    if (d.dest != mac_->id()) return false;
    if (!st.delivered_here) {
      st.delivered_here = true;
      ++stats_.deliveries;
      if (on_delivered) on_delivered(command, group_seqno);
    }
    return true;
  });
  if (dests.empty()) return;

  // Partition the remaining destinations by their next expected relay: one
  // sub-packet per divergent branch, unicast fallback for orphans.
  std::map<NodeId, std::pair<Forwarding::Candidate, std::vector<msg::GroupDest>>>
      branches;
  std::vector<msg::GroupDest> orphans;
  for (const auto& d : dests) {
    const std::size_t floor = forwarding_->own_match_toward(d.code);
    const auto relay = forwarding_->pick_relay(d.code, floor);
    if (!relay.has_value()) {
      orphans.push_back(d);
      continue;
    }
    auto& slot = branches[relay->id];
    slot.first = *relay;
    slot.second.push_back(d);
  }
  if (branches.size() > 1) ++stats_.splits;

  for (auto& [relay_id, branch] : branches) {
    send_branch(group_seqno, command, hops, branch.first,
                std::move(branch.second), /*attempt=*/0);
  }
  if (!orphans.empty()) fallback_unicast(orphans, command);
}

void GroupControl::send_branch(std::uint32_t group_seqno, std::uint16_t command,
                               std::uint8_t hops,
                               const Forwarding::Candidate& relay,
                               std::vector<msg::GroupDest> dests,
                               unsigned attempt) {
  // Chunk branches that would exceed the 802.15.4 MPDU (greedy fill; the
  // tail recurses as its own sub-packet).
  {
    msg::GroupControlPacket probe;
    probe.dests = dests;
    Frame sizing;
    sizing.payload = probe;
    while (dests.size() > 1 && wire_size_bytes(sizing) > kMaxMpduBytes) {
      std::vector<msg::GroupDest> tail;
      tail.push_back(std::move(dests.back()));
      dests.pop_back();
      // Move one destination out at a time; send the single-dest tail as
      // its own branch (it shares the same expected relay).
      send_branch(group_seqno, command, hops, relay, std::move(tail),
                  attempt);
      probe.dests = dests;
      sizing.payload = probe;
    }
  }

  msg::GroupControlPacket packet;
  packet.dests = dests;
  packet.expected_relay = relay.id;
  packet.expected_relay_code_len =
      field::u8(std::min<std::size_t>(relay.code_len, 0xFF));
  packet.group_seqno = group_seqno;
  packet.command = command;
  packet.hops_so_far = hops;

  Frame frame;
  frame.dst = kBroadcastNode;  // anycast
  frame.payload = packet;
  ++stats_.subpackets_sent;
  const bool queued = mac_->send(
      std::move(frame),
      [this, group_seqno, command, hops, relay, dests,
       attempt](const SendResult& result) {
        if (result.success) return;
        if (attempt + 1 < config_.retries) {
          send_branch(group_seqno, command, hops, relay, dests, attempt + 1);
          return;
        }
        // The branch is unreachable as a group: hand each destination to
        // the (backtracking, Re-Tele-capable) unicast plane.
        fallback_unicast(dests, command);
      });
  if (!queued) {
    sim_->schedule_in(kSecond, [this, group_seqno, command, hops, relay,
                                dests, attempt] {
      send_branch(group_seqno, command, hops, relay, dests, attempt);
    });
  }
}

void GroupControl::fallback_unicast(const std::vector<msg::GroupDest>& dests,
                                    std::uint16_t command) {
  for (const auto& d : dests) {
    ++stats_.unicast_fallbacks;
    forwarding_->send_control(d.dest, d.code, command);
  }
}

}  // namespace telea
