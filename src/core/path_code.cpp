#include "core/path_code.hpp"

namespace telea {

std::uint8_t space_bits_for(std::uint32_t children,
                            const HeadroomPolicy& policy,
                            bool reserve_zero) noexcept {
  const std::uint32_t chi = children + policy.slack(children);
  std::uint8_t bits = 1;
  // Capacity is 2^bits, minus one when the zero position is reserved.
  auto capacity = [reserve_zero](std::uint8_t b) -> std::uint64_t {
    const std::uint64_t raw = 1ULL << b;
    return reserve_zero ? raw - 1 : raw;
  };
  while (capacity(bits) < chi && bits < 32) ++bits;
  return bits;
}

PathCode make_child_code(const PathCode& parent_code, std::uint32_t position,
                         std::uint8_t space_bits) noexcept {
  if (space_bits == 0 || space_bits > 32) return PathCode{};
  if (space_bits < 32 && position >= (1ULL << space_bits)) return PathCode{};
  PathCode code = parent_code;
  if (!code.append_bits(position, space_bits)) return PathCode{};
  return code;
}

PathCode sink_code() noexcept {
  PathCode code;
  code.push_back(false);
  return code;
}

std::size_t code_divergence(const PathCode& a, const PathCode& b) noexcept {
  const std::size_t shared = a.common_prefix_len(b);
  // Score: bits that differ, summed over both codes. Maximal when the codes
  // split immediately below the sink.
  return (a.size() - shared) + (b.size() - shared);
}

}  // namespace telea
