#pragma once

#include <cstdint>
#include <functional>

#include "util/bitstring.hpp"

namespace telea {

/// A node's path code: the bit string that implicitly encodes every upstream
/// relay from the node to the sink (paper Sec. III-B1). The sink's code is
/// the single bit "0"; each child's code is its parent's code followed by the
/// child's allocated position rendered in the parent's bit-space width.
using PathCode = BitString;

/// Policy knob for Algorithm 1's headroom term. The paper writes
/// χ = N + [10, N/2] for N discovered children; the bracket is ambiguous, but
/// the worked example (Fig. 2: two children -> a 2-bit space) pins it down to
/// a *small* slack that grows with N and saturates — we read it as
/// χ = N + clamp(N/2, 1, 10) and expose the policy for ablation
/// (bench_ablation_space sweeps it).
struct HeadroomPolicy {
  std::uint32_t min_slack = 1;
  std::uint32_t max_slack = 10;
  /// slack = clamp(N / divisor, min_slack, max_slack)
  std::uint32_t divisor = 2;

  [[nodiscard]] std::uint32_t slack(std::uint32_t children) const noexcept {
    const std::uint32_t raw = children / (divisor == 0 ? 1 : divisor);
    return raw < min_slack ? min_slack : (raw > max_slack ? max_slack : raw);
  }
};

/// Algorithm 1 lines 1-6: the bit-space size π a parent provides for its
/// children. `reserve_zero` excludes the all-zero position (see
/// make_child_code); capacity is then 2^π - 1.
[[nodiscard]] std::uint8_t space_bits_for(std::uint32_t children,
                                          const HeadroomPolicy& policy,
                                          bool reserve_zero) noexcept;

/// Derives a child's path code: parent's code with `position` appended in a
/// `space_bits`-wide field (Fig. 3: position 2 in a 5-bit space under prefix
/// p yields "p:00010"). Returns an empty code when it would overflow the
/// 128-bit capacity or the position does not fit the space.
[[nodiscard]] PathCode make_child_code(const PathCode& parent_code,
                                       std::uint32_t position,
                                       std::uint8_t space_bits) noexcept;

/// The sink's initial path code: "0" with one valid bit (Sec. III-B1).
[[nodiscard]] PathCode sink_code() noexcept;

/// Divergence between two codes: how early they split, scored for the
/// Re-Tele detour choice (Sec. III-C4 wants the destination's neighbor whose
/// code differs "to the greatest extent" — i.e. minimal common prefix).
[[nodiscard]] std::size_t code_divergence(const PathCode& a,
                                          const PathCode& b) noexcept;

}  // namespace telea
