#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/addressing.hpp"
#include "core/forwarding.hpp"
#include "mac/lpl.hpp"
#include "sim/simulator.hpp"

namespace telea {

struct GroupControlConfig {
  /// Anycast send operations per sub-packet before falling back to
  /// per-destination unicast control via the ordinary forwarding plane.
  unsigned retries = 2;
  /// Guard delay after claiming, mirroring the unicast plane.
  SimTime claim_defer = 40 * kMillisecond;
};

/// One-to-many remote control — the extension the paper claims TeleAdjusting
/// admits "easily" (Sec. I). A group packet carries every destination whose
/// encoded path still shares the segment being traversed; each claiming
/// relay delivers locally if listed, then *splits* the remaining
/// destinations by their next expected relay and forwards one sub-packet per
/// branch. Shared path segments are therefore transmitted once, and the
/// existing per-destination forwarding plane serves as the fallback when a
/// branch has no group candidate.
class GroupControl {
 public:
  GroupControl(Simulator& sim, LplMac& mac, CtpNode& ctp,
               Addressing& addressing, Forwarding& forwarding,
               const GroupControlConfig& config);

  GroupControl(const GroupControl&) = delete;
  GroupControl& operator=(const GroupControl&) = delete;

  /// Origin-side: sends `command` to all of `dests` as one shared packet.
  /// Returns the group sequence number.
  std::uint32_t send_group(const std::vector<msg::GroupDest>& dests,
                           std::uint16_t command);

  /// Dispatcher entry for GroupControlPacket frames.
  AckDecision handle(NodeId from, const msg::GroupControlPacket& packet,
                     bool for_me);

  /// Fired when a group command addressed to this node arrives (first time).
  std::function<void(std::uint16_t command, std::uint32_t group_seqno)>
      on_delivered;

  struct Stats {
    std::uint64_t groups_sent = 0;
    std::uint64_t claims = 0;
    std::uint64_t splits = 0;           // branch divergences encountered
    std::uint64_t subpackets_sent = 0;  // group forwards started
    std::uint64_t unicast_fallbacks = 0;
    std::uint64_t deliveries = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct GroupState {
    std::set<NodeId> processed_dests;  // dests we already moved/served here
    bool delivered_here = false;
  };

  /// Forwards `dests` from this node: local delivery, branch partition,
  /// per-branch anycast, unicast fallback.
  void dispatch(std::uint32_t group_seqno, std::uint16_t command,
                std::uint8_t hops, std::vector<msg::GroupDest> dests);

  void send_branch(std::uint32_t group_seqno, std::uint16_t command,
                   std::uint8_t hops, const Forwarding::Candidate& relay,
                   std::vector<msg::GroupDest> dests, unsigned attempt);

  void fallback_unicast(const std::vector<msg::GroupDest>& dests,
                        std::uint16_t command);

  Simulator* sim_;
  LplMac* mac_;
  CtpNode* ctp_;
  Addressing* addressing_;
  Forwarding* forwarding_;
  GroupControlConfig config_;
  std::unordered_map<std::uint32_t, GroupState> groups_;
  std::uint32_t next_group_seqno_ = 1;
  Stats stats_;
};

}  // namespace telea
