#pragma once

#include <functional>
#include <optional>

#include "core/addressing.hpp"
#include "core/forwarding.hpp"
#include "core/group_control.hpp"
#include "mac/lpl.hpp"
#include "net/ctp.hpp"
#include "sim/simulator.hpp"

namespace telea {

/// A Re-Tele detour suggestion from the controller (Sec. III-C4): a neighbor
/// of the destination whose path code diverges maximally and whose link to
/// the destination is good.
struct DetourSuggestion {
  NodeId via = kInvalidNode;
  PathCode via_code;
};

struct TeleConfig {
  AddressingConfig addressing{};
  ForwardingConfig forwarding{};
  GroupControlConfig group{};
  /// Enables the destination-unreachable countermeasure ("Re-Tele" in the
  /// paper's plots). Requires a controller hook to supply detours.
  bool retele = true;
};

/// The TeleAdjusting protocol: one instance per node, combining the path-code
/// addressing plane (Sec. III-B) with the opportunistic control-packet
/// forwarding plane (Sec. III-C), wired into CTP and the LPL MAC.
///
/// Usage (see examples/quickstart.cpp):
///  - construct over a node's Simulator / LplMac / CtpNode,
///  - call start() at boot,
///  - route TeleAdjusting frame types from the node's dispatcher into
///    handle_frame(),
///  - on the sink, call send_control() with the destination's path code
///    (reported upward in deployments; read from the addressing plane here).
class TeleAdjusting final : public CtpListener {
 public:
  TeleAdjusting(Simulator& sim, LplMac& mac, CtpNode& ctp,
                const TeleConfig& config);

  TeleAdjusting(const TeleAdjusting&) = delete;
  TeleAdjusting& operator=(const TeleAdjusting&) = delete;

  /// Wires CTP hooks and starts the addressing plane. Call at node boot.
  void start();

  /// Wipes the whole protocol state (addressing tables, forwarding state,
  /// Re-Tele bookkeeping) — the RAM loss of a state-losing reboot. The node
  /// keeps running; call start() again to resume timers. Neighbors retain
  /// our *old* code, which is exactly the stale-code delivery case the
  /// paper's old-code matching exists for (Sec. III-B6).
  void reset_state();

  /// Dispatcher entry: handles TeleBeacon / PositionRequest / AllocationAck /
  /// ConfirmFrame / ControlPacket / FeedbackPacket frames, plus the
  /// detour-returned e2e acknowledgement (a CtpData unicast that is not part
  /// of normal collection). Returns the link-layer ack decision.
  AckDecision handle_frame(const Frame& frame, bool for_me);

  // --- controller / sink API -----------------------------------------------
  /// Sends a remote-control command to `dest`. Only meaningful on the sink.
  std::optional<std::uint32_t> send_control(NodeId dest,
                                            const PathCode& dest_code,
                                            std::uint16_t command);

  /// One-to-many control (the paper's Sec. I extension): one shared packet
  /// per common path segment, split at branch divergences. Destinations a
  /// branch cannot serve fall back to per-destination control packets,
  /// which then arrive through on_control_delivered instead of
  /// group_control().on_delivered.
  std::uint32_t send_control_group(const std::vector<msg::GroupDest>& dests,
                                   std::uint16_t command);

  using ControllerHook = std::function<std::optional<DetourSuggestion>(
      NodeId dest, std::uint32_t seqno)>;
  /// Supplies Re-Tele detours. The paper assumes the remote controller knows
  /// each node's local topology (Sec. III-C4); in the harness this is backed
  /// by the experiment's global view.
  void set_controller_hook(ControllerHook hook) {
    controller_hook_ = std::move(hook);
  }

  /// Sink-side: feed every CtpData delivered at the root through this to
  /// surface e2e control acknowledgements.
  void notify_root_delivery(const msg::CtpData& data);

  // --- callbacks (stats / applications) -------------------------------------
  /// At the destination: a control packet arrived (first copy only).
  std::function<void(const msg::ControlPacket&, bool direct)>
      on_control_delivered;
  /// At the sink: the destination's end-to-end acknowledgement arrived.
  std::function<void(std::uint32_t seqno, NodeId dest)> on_e2e_ack;
  /// At the sink: delivery failed even after the Re-Tele countermeasure (or
  /// with Re-Tele disabled, after backtracking exhausted).
  std::function<void(std::uint32_t seqno)> on_delivery_failed;

  /// Attaches a decision tracer to this protocol instance (redirects and
  /// ack-path hops here, claim/suppress/backtrack in the forwarding plane).
  void set_tracer(Tracer* tracer) noexcept {
    tracer_ = tracer;
    forwarding_.set_tracer(tracer);
  }

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] Addressing& addressing() noexcept { return addressing_; }
  [[nodiscard]] const Addressing& addressing() const noexcept {
    return addressing_;
  }
  [[nodiscard]] Forwarding& forwarding() noexcept { return forwarding_; }
  [[nodiscard]] GroupControl& group_control() noexcept { return group_; }

  // --- CtpListener -----------------------------------------------------------
  void on_route_found() override;
  void on_parent_changed(NodeId old_parent, NodeId new_parent) override;
  void on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon) override;

 private:
  void send_e2e_ack(const msg::ControlPacket& packet, bool direct,
                    NodeId direct_from);
  void handle_origin_stuck(const msg::ControlPacket& packet);

  Simulator* sim_;
  LplMac* mac_;
  CtpNode* ctp_;
  TeleConfig config_;
  Addressing addressing_;
  Forwarding forwarding_;
  GroupControl group_;
  ControllerHook controller_hook_;
  Tracer* tracer_ = nullptr;
  // Track which seqnos already used their Re-Tele attempt so a second
  // failure reports up instead of looping.
  std::vector<std::uint32_t> detour_tried_;
  // Who hand-delivered the last direct (detour) control packet to us; the
  // e2e ack retraces that hop first (Sec. III-C5).
  NodeId last_direct_from_ = kInvalidNode;
};

}  // namespace telea
