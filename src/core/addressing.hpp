#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/path_code.hpp"
#include "core/tables.hpp"
#include "mac/lpl.hpp"
#include "net/ctp.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace telea {

struct AddressingConfig {
  /// "10 rounds of routing beacons (the duration is 10×wake-up interval)"
  /// after the parent-found event with no new child triggers the initial
  /// allocation (Sec. III-B2).
  unsigned stable_rounds = 10;
  SimTime wake_interval = 512 * kMillisecond;
  HeadroomPolicy headroom{};
  /// Reserve the all-zero position so a child code never equals its parent's
  /// code extended by zeros (matches the Fig. 2 example, where the first
  /// child gets position 01, not 00).
  bool reserve_zero_position = true;
  /// Pacing of position-request retries while unpositioned (Sec. III-B4).
  SimTime request_retry = 3 * kSecond;
  /// Debounce for TeleAdjusting beacon broadcasts when code changes ripple.
  /// Also paces the level-by-level code cascade, so keep it well under a
  /// wake interval.
  SimTime beacon_coalesce = 150 * kMillisecond;
};

/// The path-code construction half of TeleAdjusting (paper Sec. III-B,
/// Algorithms 1-3): builds and maintains this node's path code, allocates
/// positions to children on the CTP reverse routing tree, keeps the child
/// table consistent through beacon-piggybacked claims, answers position
/// requests, and extends the bit space when children overflow it.
class Addressing final : public BeaconPiggyback {
 public:
  Addressing(Simulator& sim, LplMac& mac, CtpNode& ctp,
             const AddressingConfig& config);

  Addressing(const Addressing&) = delete;
  Addressing& operator=(const Addressing&) = delete;

  /// Starts internal timers. Call at node boot.
  void start();

  /// Wipes every piece of addressing state (code, position, space, child and
  /// neighbor tables, timers) back to the just-constructed blank — the RAM
  /// loss of a reboot without persistent storage. Fires on_code_changed if a
  /// code was lost. Call start() afterwards to resume operation.
  void reset();

  // --- events from the routing plane (wired by the TeleAdjusting facade) --
  void on_route_found();
  void on_parent_changed(NodeId old_parent, NodeId new_parent);
  void on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon);

  // --- frame handlers (wired by the node dispatcher via the facade) -------
  void handle_tele_beacon(NodeId from, const msg::TeleBeacon& beacon);
  AckDecision handle_position_request(NodeId from, bool for_me);
  AckDecision handle_allocation_ack(NodeId from, NodeId link_dst,
                                    const msg::AllocationAck& ack,
                                    bool for_me);
  AckDecision handle_confirm(NodeId from, const msg::ConfirmFrame& confirm,
                             bool for_me);

  // --- BeaconPiggyback ------------------------------------------------------
  void fill_beacon(msg::CtpBeacon& beacon) override;

  // --- introspection --------------------------------------------------------
  [[nodiscard]] bool has_code() const noexcept { return !code_.empty(); }
  [[nodiscard]] const PathCode& code() const noexcept { return code_; }
  [[nodiscard]] const PathCode& old_code() const noexcept { return old_code_; }
  [[nodiscard]] bool has_position() const noexcept { return have_position_; }
  [[nodiscard]] std::uint32_t position() const noexcept { return position_; }
  [[nodiscard]] std::uint8_t space_bits() const noexcept { return space_bits_; }
  [[nodiscard]] const ChildTable& children() const noexcept {
    return child_table_;
  }
  [[nodiscard]] NeighborCodeTable& neighbors() noexcept { return neighbors_; }
  [[nodiscard]] const NeighborCodeTable& neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] std::size_t discovered_children() const noexcept {
    return discovered_.size();
  }

  /// Fig. 6(c) metric: when the routing-found event fired and when this node
  /// first obtained a path code.
  [[nodiscard]] std::optional<SimTime> triggered_at() const noexcept {
    return trigger_at_;
  }
  [[nodiscard]] std::optional<SimTime> code_assigned_at() const noexcept {
    return code_at_;
  }

  /// The node that allocated our current position — the parent in the *code
  /// tree* (may lag the live CTP parent; Fig. 6(d) compares the two trees).
  [[nodiscard]] NodeId code_parent() const noexcept { return code_parent_; }

  [[nodiscard]] const AddressingConfig& config() const noexcept {
    return config_;
  }

  // --- fault injection (tests / FaultPlan only) ----------------------------
  /// Flips bit `bit` of this node's own code (modulo its length) without any
  /// beacon or table update — the silent memory corruption the invariant
  /// engine exists to catch. No-op while codeless. Returns true if flipped.
  bool corrupt_code_bit(std::size_t bit);

  /// Rewrites the allocated position of child table slot `slot` (modulo the
  /// table size) to `position`, clobbering the derived code — forges a
  /// sibling-position collision or a prefix break. Returns true if applied.
  bool corrupt_child_position(std::size_t slot, std::uint32_t position);

  /// Invoked whenever this node's own code changes (forwarding cares).
  std::function<void()> on_code_changed;

  /// Observable protocol activity of this node's addressing plane.
  struct Stats {
    std::uint64_t tele_beacons_sent = 0;
    std::uint64_t allocations = 0;       // positions handed to children
    std::uint64_t requests_sent = 0;     // position requests to the parent
    std::uint64_t requests_served = 0;   // position requests answered
    std::uint64_t confirms_sent = 0;
    std::uint64_t confirms_received = 0;
    std::uint64_t space_extensions = 0;
    std::uint64_t code_changes = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void set_code(const PathCode& code);
  void stability_check();
  void do_initial_allocation();
  /// Allocates a (new) position to `child`, extending the space if needed,
  /// and unicasts an AllocationAck. Alg. 2 lines 7-14.
  void allocate_and_ack(NodeId child);
  void extend_space();
  void schedule_tele_beacon();
  void send_tele_beacon();
  void send_confirm();
  void send_to_parent(Frame frame);
  void request_position_check();
  [[nodiscard]] std::uint32_t first_position() const noexcept {
    return config_.reserve_zero_position ? 1u : 0u;
  }
  [[nodiscard]] msg::TeleBeacon build_tele_beacon() const;

  Simulator* sim_;
  LplMac* mac_;
  CtpNode* ctp_;
  AddressingConfig config_;

  PathCode code_;
  PathCode old_code_;
  NodeId code_parent_ = kInvalidNode;
  bool have_position_ = false;
  std::uint32_t position_ = 0;
  std::uint8_t space_bits_ = 0;  // 0 = not yet allocated (Alg. 1 not run)
  bool allocated_ = false;       // initial allocation done

  ChildTable child_table_;
  NeighborCodeTable neighbors_;
  std::vector<NodeId> discovered_;  // children seen before/after allocation

  std::optional<SimTime> trigger_at_;
  std::optional<SimTime> code_at_;
  SimTime last_new_child_ = 0;

  SimTime last_request_at_ = 0;
  unsigned parent_send_failures_ = 0;
  Timer stability_timer_;
  Timer request_timer_;
  Timer beacon_timer_;
  bool beacon_pending_ = false;
  unsigned pending_beacon_repeats_ = 0;
  Stats stats_;
};

}  // namespace telea
