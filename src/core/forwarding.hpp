#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "core/addressing.hpp"
#include "core/flight_recorder.hpp"
#include "mac/lpl.hpp"
#include "net/ctp.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace telea {

struct ForwardingConfig {
  /// Unacknowledged LPL send operations before a relay declares itself
  /// unable to progress and backtracks (Sec. III-C3). The paper's "more
  /// than 5 times" counts packet transmissions; one of our send operations
  /// already sweeps every wake phase with ~200 copies, so a single repeat
  /// is conclusive evidence of unreachability.
  unsigned forward_retries = 2;
  /// A freshly-claimed packet is forwarded only after this guard delay,
  /// during which the claimant keeps re-acknowledging the upstream sender's
  /// repeated copies. Without it the claimant goes deaf (transmitting) while
  /// the upstream sender — whose ack got lost — recruits a second claimant,
  /// spawning duplicate delivery chains.
  SimTime claim_defer = 40 * kMillisecond;
  /// Candidate relays must look usable to the link estimator (ETX in tenths
  /// at most this) — prefix knowledge from a single lucky TeleBeacon does
  /// not make a node a neighbor worth addressing. Falls back to ungated
  /// candidates when none qualify.
  std::uint16_t relay_quality_etx10 = 45;
  /// If the upstream sender keeps repeating this many copies past our
  /// (re-)acknowledgements, our acks are not landing — yield the claim (the
  /// sender will pick, or has picked, another relay).
  unsigned claim_yield_dups = 8;
  /// After backtracking exhausts the origin's candidates, the origin tries
  /// again this many times (clearing the unreachable marks the failed
  /// attempt set) before declaring the destination unreachable — the
  /// sink-side retry of Fig. 5(a).
  unsigned origin_retries = 1;
  SimTime origin_retry_delay = 3 * kSecond;
  /// Per-node budget of backtrack rounds for one packet. Without it, two
  /// relays can ping-pong feedback for an undeliverable destination forever
  /// (each re-holds, fails, returns it), saturating the channel.
  unsigned max_backtracks = 3;
  /// Condition (2): an on-path overhearer with a longer matched prefix than
  /// the expected relay claims the packet (Sec. III-C2). Ablatable.
  bool opportunistic = true;
  /// Condition (3): an off-path overhearer claims when one of its *neighbors*
  /// is a better relay (Fig. 4c/4d). Ablatable.
  bool neighbor_assist = true;
  /// Backtracking via feedback packets (Sec. III-C3). Ablatable.
  bool backtracking = true;
  /// Safety expiry for unreachable marks if the neighbor's beacon is lost.
  SimTime unreachable_timeout = 120 * kSecond;
  /// Also match against neighbors' retained old codes (Sec. III-B6).
  bool match_old_codes = true;
};

/// Observer interface for the runtime invariant engine (src/check): the
/// forwarding plane reports every relay claim (with the claim condition it
/// invoked) and every final delivery, so an independent re-check can verify
/// the claim was justified and no seqno is consumed twice. Kept here so core
/// does not depend on the checking layer.
class ForwardingAuditor {
 public:
  virtual ~ForwardingAuditor() = default;
  /// `stated` is the claim condition the forwarding plane invoked
  /// (kExpectedRelay / kLongerPrefix / kNeighborPrefix); `rescue` marks a
  /// feedback-overhear rescue, whose progress bar is >= instead of >.
  virtual void on_claim(NodeId node, const msg::ControlPacket& packet,
                        TraceReason stated, bool rescue) = 0;
  /// First consumption of a control seqno at its destination.
  virtual void on_final_delivery(NodeId node, const msg::ControlPacket& packet,
                                 bool direct) = 0;
};

/// The control-packet forwarding half of TeleAdjusting (Sec. III-C):
/// distributed prefix matching against the destination's path code,
/// link-layer anycast claims by any node that can out-progress the expected
/// relay, backtracking with feedback packets, and the direct-delivery tail
/// of the Re-Tele detour.
class Forwarding {
 public:
  Forwarding(Simulator& sim, LplMac& mac, CtpNode& ctp, Addressing& addressing,
             const ForwardingConfig& config);

  Forwarding(const Forwarding&) = delete;
  Forwarding& operator=(const Forwarding&) = delete;

  // --- origin (sink) API ----------------------------------------------------
  /// Injects a control packet addressed to `dest` (whose path code the
  /// controller knows). Returns the assigned seqno, or nullopt when no first
  /// relay can be determined.
  std::optional<std::uint32_t> send_control(NodeId dest,
                                            const PathCode& dest_code,
                                            std::uint16_t command);

  /// Re-Tele (Sec. III-C4): route via `via` (a neighbor of `dest` with a
  /// maximally divergent code); `via` delivers by direct unicast. Reuses
  /// `seqno` so the destination deduplicates across both attempts.
  bool send_control_detour(NodeId dest, const PathCode& dest_code, NodeId via,
                           const PathCode& via_code, std::uint16_t command,
                           std::uint32_t seqno);

  // --- frame handlers ---------------------------------------------------------
  AckDecision handle_control(NodeId from, const msg::ControlPacket& packet,
                             bool for_me);
  AckDecision handle_feedback(NodeId from, const msg::FeedbackPacket& feedback,
                              bool for_me);

  /// Routing beacons clear unreachable marks (Sec. III-C3) — call per beacon.
  void on_beacon_heard(NodeId from);

  /// Drops every per-packet state (cancelling in-flight sends) — the RAM
  /// loss of a reboot. Stats survive: they model serial-reported counters
  /// accumulated at the controller, not node RAM.
  void reset();

  /// An end-to-end acknowledgement for `seqno` was overheard riding the
  /// collection plane: the destination has the packet, so any local state
  /// for it is finished business (suppresses straggler duplicates).
  void note_ack_overheard(std::uint32_t seqno);

  /// The MAC re-heard (and re-acked) a duplicate copy of a control packet we
  /// claimed. While deferring our forward this extends the quiet period; if
  /// the sender ignores many of our re-acks, our claim evidently lost (the
  /// reverse link is one-way) and we yield the packet.
  void note_duplicate(NodeId from, const msg::ControlPacket& packet);

  // --- callbacks ---------------------------------------------------------------
  /// Fired at the destination on first delivery of a control seqno.
  std::function<void(const msg::ControlPacket&, bool direct)> on_delivered;
  /// Fired at the origin when downward forwarding is exhausted (backtracking
  /// returned the packet to the origin and no alternative relay remains).
  /// The facade uses this to trigger the Re-Tele countermeasure.
  std::function<void(const msg::ControlPacket&)> on_origin_stuck;
  /// Fired whenever this node claims (acks) a control packet — stats hook.
  std::function<void(const msg::ControlPacket&)> on_claimed;

  [[nodiscard]] std::uint32_t next_seqno() const noexcept { return next_seqno_; }

  /// Observable protocol activity of this node's forwarding plane — the
  /// counters a deployment would report over serial (paper Sec. IV-B1).
  struct Stats {
    std::uint64_t claims = 0;        // control packets accepted for relaying
    std::uint64_t forwards = 0;      // anycast/direct send operations started
    std::uint64_t deliveries = 0;    // control packets consumed here
    std::uint64_t duplicates = 0;    // claims yielded to a better carrier
    std::uint64_t yields = 0;        // claims dropped after ignored re-acks
    std::uint64_t suppressions = 0;  // pending forwards cancelled by overhear
    std::uint64_t backtracks = 0;    // feedback rounds initiated
    std::uint64_t feedback_claims = 0;  // packets rescued from feedback
    std::uint64_t origin_retries = 0;
    std::uint64_t origin_failures = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Attaches a decision tracer (claim/suppress/backtrack events with
  /// reasons). Pass nullptr to detach; recording is a null-check when unset.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches the invariant auditor (claim/delivery re-checks). Pass nullptr
  /// to detach; auditing is a null-check when unset.
  void set_auditor(ForwardingAuditor* auditor) noexcept { auditor_ = auditor; }

  /// Attaches this node's flight recorder (claim / yield / backtrack /
  /// ack-timeout / give-up events). Pass nullptr to detach.
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    flight_ = recorder;
  }

  struct Candidate {
    NodeId id = kInvalidNode;
    std::size_t code_len = 0;
  };

  /// Known on-path next relays toward `route` with progress strictly beyond
  /// `floor`, excluding unreachable-marked neighbors. Returns the
  /// *least-progress* candidate (Fig. 4c) with link-quality preference.
  /// Public so the one-to-many extension can partition destinations by
  /// branch with the same relay-selection policy.
  [[nodiscard]] std::optional<Candidate> pick_relay(const PathCode& route,
                                                    std::size_t floor) const;

  /// This node's own on-path prefix depth toward `route` (0 = off-path),
  /// considering the retained old code as the paper prescribes.
  [[nodiscard]] std::size_t own_match_toward(const PathCode& route) const;

 private:
  struct PacketState {
    bool holding = false;       // we own the packet and owe it a forward
    bool done = false;          // successfully handed downstream / delivered
    bool finished = false;      // e2e ack overheard: never touch again
    bool delivered_here = false;
    NodeId came_from = kInvalidNode;
    unsigned attempts = 0;
    std::size_t floor = 0;      // progress we promised to beat (fixed at claim)
    std::uint8_t last_sent_expected_len = 0;
    SimTime last_done_at = 0;   // re-claim cooldown anchor
    SimTime defer_deadline = 0;  // end of the post-claim quiet period
    unsigned dup_acks = 0;       // sender copies re-acked while deferring
    unsigned origin_retries = 0;  // origin-side retry budget consumed
    unsigned backtrack_rounds = 0;  // feedback rounds this node initiated
    std::vector<NodeId> blocked;  // candidates we marked unreachable
    std::optional<std::uint32_t> mac_token;  // cancellable in-flight send
    msg::ControlPacket packet;
  };

  /// Effective routing target: the detour node when one is set.
  [[nodiscard]] static NodeId route_target(const msg::ControlPacket& p) noexcept {
    return p.detour_via != kInvalidNode ? p.detour_via : p.dest;
  }
  [[nodiscard]] static const PathCode& route_code(
      const msg::ControlPacket& p) noexcept {
    return p.detour_via != kInvalidNode ? p.detour_code : p.dest_code;
  }

  /// Length of this node's own on-path prefix match against the packet's
  /// route code, or 0 when off-path. Checks the current and (optionally)
  /// previous own code.
  [[nodiscard]] std::size_t own_match_len(const msg::ControlPacket& p) const;

  [[nodiscard]] std::optional<Candidate> pick_expected_relay(
      const msg::ControlPacket& p, std::size_t floor,
      std::vector<NodeId>* all = nullptr) const;

  [[nodiscard]] std::optional<Candidate> pick_for_route(
      const PathCode& route, std::size_t floor,
      std::vector<NodeId>* all) const;

  /// True when any known neighbor satisfies condition (3).
  [[nodiscard]] bool neighbor_can_progress(const msg::ControlPacket& p) const;

  void claim(NodeId from, const msg::ControlPacket& packet);
  void deliver(NodeId from, const msg::ControlPacket& packet, bool direct);
  void forward(std::uint32_t seqno);
  void on_forward_result(std::uint32_t seqno, const SendResult& result);
  void backtrack(std::uint32_t seqno, TraceReason reason);
  void send_feedback(std::uint32_t seqno, unsigned attempt);
  void defer_check(std::uint32_t seqno);

  PacketState& state_for(const msg::ControlPacket& packet);

  Simulator* sim_;
  LplMac* mac_;
  CtpNode* ctp_;
  Addressing* addressing_;
  ForwardingConfig config_;

  std::unordered_map<std::uint32_t, PacketState> states_;
  std::uint32_t next_seqno_ = 1;
  Stats stats_;
  Tracer* tracer_ = nullptr;
  ForwardingAuditor* auditor_ = nullptr;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace telea
