#include "core/teleadjusting.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace telea {

TeleAdjusting::TeleAdjusting(Simulator& sim, LplMac& mac, CtpNode& ctp,
                             const TeleConfig& config)
    : sim_(&sim),
      mac_(&mac),
      ctp_(&ctp),
      config_(config),
      addressing_(sim, mac, ctp, config.addressing),
      forwarding_(sim, mac, ctp, addressing_, config.forwarding),
      group_(sim, mac, ctp, addressing_, forwarding_, config.group) {
  forwarding_.on_delivered = [this](const msg::ControlPacket& packet,
                                    bool direct) {
    if (on_control_delivered) on_control_delivered(packet, direct);
    send_e2e_ack(packet, direct, last_direct_from_);
  };
  forwarding_.on_origin_stuck = [this](const msg::ControlPacket& packet) {
    handle_origin_stuck(packet);
  };
}

void TeleAdjusting::start() {
  // The owning node stack routes CtpListener events here (it may fan them to
  // several protocols); we claim only the beacon piggyback slot ourselves.
  ctp_->set_piggyback(&addressing_);
  addressing_.start();
}

void TeleAdjusting::reset_state() {
  forwarding_.reset();
  addressing_.reset();
  detour_tried_.clear();
  last_direct_from_ = kInvalidNode;
}

void TeleAdjusting::on_route_found() { addressing_.on_route_found(); }

void TeleAdjusting::on_parent_changed(NodeId old_parent, NodeId new_parent) {
  addressing_.on_parent_changed(old_parent, new_parent);
}

void TeleAdjusting::on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon) {
  addressing_.on_beacon_heard(from, beacon);
  forwarding_.on_beacon_heard(from);
}

std::optional<std::uint32_t> TeleAdjusting::send_control(
    NodeId dest, const PathCode& dest_code, std::uint16_t command) {
  return forwarding_.send_control(dest, dest_code, command);
}

std::uint32_t TeleAdjusting::send_control_group(
    const std::vector<msg::GroupDest>& dests, std::uint16_t command) {
  return group_.send_group(dests, command);
}

AckDecision TeleAdjusting::handle_frame(const Frame& frame, bool for_me) {
  const NodeId from = frame.src;
  return std::visit(
      [&](const auto& payload) -> AckDecision {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, msg::TeleBeacon>) {
          addressing_.handle_tele_beacon(from, payload);
          return AckDecision::kAccept;
        } else if constexpr (std::is_same_v<T, msg::PositionRequest>) {
          return addressing_.handle_position_request(from, for_me);
        } else if constexpr (std::is_same_v<T, msg::AllocationAck>) {
          return addressing_.handle_allocation_ack(from, frame.dst, payload,
                                                   for_me);
        } else if constexpr (std::is_same_v<T, msg::ConfirmFrame>) {
          return addressing_.handle_confirm(from, payload, for_me);
        } else if constexpr (std::is_same_v<T, msg::ControlPacket>) {
          if (payload.mode == msg::ControlMode::kDirect &&
              payload.dest == mac_->id()) {
            last_direct_from_ = from;
          }
          return forwarding_.handle_control(from, payload, for_me);
        } else if constexpr (std::is_same_v<T, msg::FeedbackPacket>) {
          return forwarding_.handle_feedback(from, payload, for_me);
        } else if constexpr (std::is_same_v<T, msg::GroupControlPacket>) {
          return group_.handle(from, payload, for_me);
        } else if constexpr (std::is_same_v<T, msg::CtpData>) {
          // Detour-returned e2e acknowledgement (Sec. III-C5): a data frame
          // unicast to us outside normal collection. Inject it into our own
          // CTP plane so it rides upward to the sink from here.
          return ctp_->handle_data(from, payload, for_me);
        } else {
          return for_me ? AckDecision::kAccept : AckDecision::kIgnore;
        }
      },
      frame.payload);
}

void TeleAdjusting::send_e2e_ack(const msg::ControlPacket& packet, bool direct,
                                 NodeId direct_from) {
  msg::CtpData ack;
  ack.is_control_ack = true;
  ack.control_seqno = packet.seqno;

  if (!direct || direct_from == kInvalidNode) {
    // Received along the encoded path: acknowledge upward through our own
    // parent, as ordinary collection traffic.
    ctp_->send_to_sink(ack);
    return;
  }
  // Received by direct unicast from a detour neighbor: our own upward path
  // is suspect, so hand the ack back to the neighbor, which forwards it to
  // the sink along *its* path (Sec. III-C5).
  ack.origin = mac_->id();
  ack.origin_seqno = ctp_->allocate_origin_seqno();
  TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(), TraceEvent::kAckPath,
                    packet.seqno, direct_from);
  Frame frame;
  frame.dst = direct_from;
  frame.payload = ack;
  mac_->send(std::move(frame), nullptr);
}

void TeleAdjusting::notify_root_delivery(const msg::CtpData& data) {
  if (!data.is_control_ack) return;
  TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(), TraceEvent::kAckPath,
                    data.control_seqno, data.origin);
  if (on_e2e_ack) on_e2e_ack(data.control_seqno, data.origin);
}

void TeleAdjusting::handle_origin_stuck(const msg::ControlPacket& packet) {
  const bool tried =
      std::find(detour_tried_.begin(), detour_tried_.end(), packet.seqno) !=
      detour_tried_.end();
  if (config_.retele && controller_hook_ && !tried) {
    if (auto detour = controller_hook_(packet.dest, packet.seqno);
        detour.has_value() && detour->via != kInvalidNode) {
      detour_tried_.push_back(packet.seqno);
      TELEA_TRACE_EVENT(tracer_, sim_->now(), mac_->id(),
                        TraceEvent::kRedirect, packet.seqno, detour->via,
                        TraceReason::kNeighborUnreachable);
      forwarding_.send_control_detour(packet.dest, packet.dest_code,
                                      detour->via, detour->via_code,
                                      packet.command, packet.seqno);
      return;
    }
  }
  if (on_delivery_failed) on_delivery_failed(packet.seqno);
}

}  // namespace telea
