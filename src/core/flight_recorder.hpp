#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"

namespace telea {

/// What a node's flight recorder remembers. Deliberately local knowledge
/// only — the events a real mote could log to a RAM ring without any global
/// view — so a dump is exactly what a field post-mortem would recover.
enum class FlightEvent : std::uint8_t {
  kForwardDecision,  // claimed a control packet     a=seqno    b=heard from
  kSuppress,         // yielded to a better relay    a=seqno    b=peer
  kBacktrack,        // returned packet upstream     a=seqno    b=upstream
  kAckTimeout,       // send sweep drew no ack       a=seqno    b=intended next
  kGiveUp,           // origin retry budget gone     a=seqno    b=attempts
  kParentChange,     // CTP parent switch            a=old      b=new
  kCodeChange,       // path code (re)assigned       a=code len b=0
  kReboot,           // state-loss reboot            a=0        b=0
  kAlert,            // timeline alert fired here    a=rule idx b=times fired
};

[[nodiscard]] const char* flight_event_name(FlightEvent e) noexcept;

struct FlightRecord {
  SimTime time = 0;
  FlightEvent event = FlightEvent::kForwardDecision;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Bounded ring of recent local events. Intentionally survives a state-loss
/// reboot: on real hardware this is the noinit RAM section post-mortems read
/// back after a watchdog reset.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 128)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(SimTime time, FlightEvent event, std::uint64_t a = 0,
              std::uint64_t b = 0);

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded (dropped ones included).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_recorded_;
  }
  /// Oldest-first copy of the ring.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

 private:
  std::size_t capacity_;
  std::deque<FlightRecord> ring_;
  std::uint64_t total_recorded_ = 0;
};

/// One dumped ring with its trigger context — produced when an invariant
/// fires, a command is given up on, a node reboots, or a timeline alert
/// rule fires against a series this node labels.
struct FlightDump {
  SimTime time = 0;           // when the dump was taken
  NodeId node = kInvalidNode;
  std::string trigger;        // "invariant:<rule>" | "command_give_up" |
                              // "reboot" | "alert:<rule>"
  std::uint64_t dropped = 0;  // events the ring had already evicted
  std::vector<FlightRecord> events;
};

/// One JSONL line per dump — the flight-recorder input of `tools/telea_top`.
[[nodiscard]] std::string render_flight_dump_json(const FlightDump& dump);

/// Human-readable rendering (telea_top and test diagnostics).
[[nodiscard]] std::string render_flight_dump_text(const FlightDump& dump);

}  // namespace telea
