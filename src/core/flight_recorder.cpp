#include "core/flight_recorder.hpp"

#include <cstdio>

namespace telea {

const char* flight_event_name(FlightEvent e) noexcept {
  switch (e) {
    case FlightEvent::kForwardDecision: return "forward_decision";
    case FlightEvent::kSuppress: return "suppress";
    case FlightEvent::kBacktrack: return "backtrack";
    case FlightEvent::kAckTimeout: return "ack_timeout";
    case FlightEvent::kGiveUp: return "give_up";
    case FlightEvent::kParentChange: return "parent_change";
    case FlightEvent::kCodeChange: return "code_change";
    case FlightEvent::kReboot: return "reboot";
    case FlightEvent::kAlert: return "alert";
  }
  return "?";
}

void FlightRecorder::record(SimTime time, FlightEvent event, std::uint64_t a,
                            std::uint64_t b) {
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(FlightRecord{time, event, a, b});
  ++total_recorded_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  return {ring_.begin(), ring_.end()};
}

std::string render_flight_dump_json(const FlightDump& dump) {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.6f,\"node\":%u,\"trigger\":\"%s\",\"dropped\":%llu,"
                "\"events\":[",
                to_seconds(dump.time), static_cast<unsigned>(dump.node),
                dump.trigger.c_str(),
                static_cast<unsigned long long>(dump.dropped));
  out += buf;
  bool first = true;
  for (const FlightRecord& r : dump.events) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"t\":%.6f,\"event\":\"%s\",\"a\":%llu,\"b\":%llu}",
                  first ? "" : ",", to_seconds(r.time),
                  flight_event_name(r.event),
                  static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

std::string render_flight_dump_text(const FlightDump& dump) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "flight dump: node %u at %.3fs, trigger %s (%zu events, %llu "
                "older dropped)\n",
                static_cast<unsigned>(dump.node), to_seconds(dump.time),
                dump.trigger.c_str(), dump.events.size(),
                static_cast<unsigned long long>(dump.dropped));
  out += buf;
  for (const FlightRecord& r : dump.events) {
    std::snprintf(buf, sizeof(buf), "  %10.6fs  %-16s a=%llu b=%llu\n",
                  to_seconds(r.time), flight_event_name(r.event),
                  static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b));
    out += buf;
  }
  return out;
}

}  // namespace telea
