// Network management scenario: the use case that motivates the paper
// (Sec. II — GreenOrbs / CitySee operations).
//
// A deployed collection network reports data to the sink; the operator's
// controller watches per-node arrival rates, detects an anomaly (a node
// whose traffic goes quiet because its duty-cycle parameters are wrong for
// the current interference), and pushes a reconfiguration command to
// exactly that node with TeleAdjusting — no network-wide flood, no manual
// ladder work at the deployment site.
//
//   $ ./network_management [seed]

#include <cstdio>
#include <cstdlib>

#include "harness/controller.hpp"
#include "harness/network.hpp"
#include "topo/topology.hpp"

using namespace telea;
using namespace telea::time_literals;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  NetworkConfig config;
  config.topology = make_connected_random(30, 100.0, seed);
  config.seed = seed;
  config.protocol = ControlProtocol::kReTele;
  Network net(config);

  // The "remote data center" of Fig. 1: watches arrivals, flags anomalies,
  // and addresses nodes by their reported path codes.
  Controller controller(net);

  std::printf("== network management with TeleAdjusting ==\n");
  std::printf("30-node field, CTP collection every 2 min, Re-Tele control\n\n");

  net.start();
  net.run_for(10_min);  // routes + path codes form
  net.start_data_collection(2_min);
  net.run_for(10_min);  // baseline reporting
  std::printf("[t=%2.0f min] baseline established, %0.f%% nodes addressable\n",
              to_seconds(net.sim().now()) / 60, net.code_coverage() * 100);

  // --- fault injection: a mote's radio config goes bad -------------------
  controller.begin_window();
  const NodeId victim = 17;
  net.node(victim).kill();  // stand-in for "misconfigured, stopped reporting"
  std::printf("[t=%2.0f min] node %u goes quiet (injected fault)\n",
              to_seconds(net.sim().now()) / 60, victim);
  net.run_for(8_min);

  // --- anomaly detection at the controller -------------------------------
  const auto quiet = controller.quiet_nodes(/*expected=*/2, /*floor=*/1);
  std::printf("[t=%2.0f min] controller flags %zu quiet node(s):",
              to_seconds(net.sim().now()) / 60, quiet.size());
  for (NodeId n : quiet) std::printf(" %u", n);
  std::printf("\n");

  // --- remote adjustment of a *live* node --------------------------------
  // Independently of the dead node, the operator retunes a healthy one:
  // e.g. command 0x0101 = "double your sampling rate". The controller owns
  // the command lifecycle — it retries on ack timeout, escalates to a
  // Re-Tele detour if plain retries keep failing, and reports the terminal
  // outcome through on_command_resolved.
  const NodeId target = 9;
  bool adjusted = false;
  net.node(target).tele()->on_control_delivered =
      [&adjusted, target](const msg::ControlPacket& p, bool direct) {
        adjusted = true;
        std::printf("  node %u applied command 0x%04x after %u tx hops%s\n",
                    target, p.command, p.hops_so_far,
                    direct ? " (via Re-Tele detour)" : "");
      };
  bool acked = false;
  controller.on_command_resolved = [&acked](const CommandResolution& res) {
    switch (res.outcome) {
      case CommandOutcome::kAcked:
        acked = true;
        std::printf("  sink received the end-to-end ack (attempt %u of the "
                    "command, %.1f s after issue)\n",
                    res.attempts,
                    to_seconds(res.resolved_at - res.issued_at));
        break;
      case CommandOutcome::kGaveUp:
        std::printf("  controller gave up after %u attempts "
                    "(%u escalated to a detour)\n",
                    res.attempts, res.escalations);
        break;
      case CommandOutcome::kNoCode:
        std::printf("  node %u is not addressable (no path code)\n", res.dest);
        break;
    }
  };
  const auto& code = net.node(target).tele()->addressing().code();
  std::printf("[t=%2.0f min] controller sends command to node %u "
              "(path code %s)\n",
              to_seconds(net.sim().now()) / 60, target,
              code.to_string().c_str());
  controller.send_command(target, 0x0101);
  net.run_for(2_min);

  std::printf("\nresult: adjusted=%s, e2e-acked=%s, mean duty cycle %.2f%%\n",
              adjusted ? "yes" : "no", acked ? "yes" : "no",
              net.average_duty_cycle() * 100);
  return adjusted && acked ? 0 : 1;
}
