// telea_sim — the general-purpose scenario runner: build any supported
// topology, pick the control protocol and channel, run the paper's workload
// and print (or CSV-export) the full metric set. Everything is a key=value
// option, so downstream users can run experiments without writing C++:
//
//   $ ./telea_sim topology=indoor protocol=retele wifi=true minutes=60
//   $ ./telea_sim config=myrun.cfg seed=7
//   $ ./telea_sim topology=random nodes=80 side=150 protocol=rpl
//
// Options (defaults in parentheses):
//   config=FILE         load options from FILE first (CLI overrides)
//   topology=indoor     indoor | tight | sparse | random | line  (indoor)
//   nodes=N             random/line node count (40)
//   side=M              random field side in meters (120)
//   spacing=M           line spacing in meters (22)
//   protocol=retele     tele | retele | drip | rpl | orpl  (retele)
//   wifi=false          bursty interferer on the channel (false)
//   seed=1              RNG seed (1)
//   runs=1              replicate trials; each gets a splitmix64-derived
//                       seed, trials run concurrently on the trial runner,
//                       printed metrics merge all runs, and every file sink
//                       below gets a ".trialN" suffix so no two trials share
//                       a stream (docs/PARALLELISM.md)
//   jobs=0              worker threads for the trial runner (0 = TELEA_JOBS
//                       env, then hardware concurrency)
//   warmup=20           warm-up minutes (20)
//   minutes=40          measurement minutes (40)
//   interval=60         control-packet interval seconds (60)
//   ipi=600             data-collection inter-packet interval seconds (600)
//   csv=DIR             write metric CSVs into DIR
//   dot=FILE            write a GraphViz snapshot of the converged network
//   trace=FILE          export the decision trace as JSONL to FILE
//                       (feed it to telea_explain to reconstruct packets)
//   metrics=DIR         write metrics.prom + metrics.json into DIR
//   report=DIR          span report: write report_sim.json (per-command
//                       latency/energy decomposition) + trace.perfetto.json
//                       into DIR (implies tracing; see docs/OBSERVABILITY.md)
//   profile=false       collect + print simulator self-profiling stats
//   invariants=false    runtime protocol invariant checkpoints; prints a
//                       summary and exits 3 on any violation (rule catalog:
//                       docs/STATIC_ANALYSIS.md)
//   failfast=false      with invariants=true: abort at the first violation
//   health=off          in-band health telemetry: on = piggyback reports and
//                       build the sink model; FILE = additionally append one
//                       snapshot JSON line per period to FILE (telea_top
//                       renders it; see docs/OBSERVABILITY.md)
//   flightrec=off       per-node flight recorders: on = arm the rings and
//                       dump on invariant violation / command give-up /
//                       reboot / alert; FILE = additionally stream each dump
//                       as a JSONL line to FILE
//   timeline=off        metric time-series sampling: on = sample the full
//                       metric set every `sample` seconds into bounded
//                       multi-resolution series; FILE = additionally stream
//                       every sample and alert transition as JSONL to FILE
//                       (telea_timeline renders/diffs it; telea_top takes it
//                       as a sparkline feed; see docs/OBSERVABILITY.md)
//   rules=FILE          alert rules evaluated each timeline sample (grammar
//                       in docs/OBSERVABILITY.md; implies timeline=on);
//                       a malformed rules file exits 2
//   sample=10           timeline sampling cadence in seconds (10)
//   log=warn            trace | debug | info | warn | error | off
//
// Fault injection (all applied after warm-up, see docs/ROBUSTNESS.md):
//   churn=N             N randomized node outages during measurement (0)
//   downtime=S          per-outage downtime seconds (120)
//   noise=DBM           one mid-run noise burst at DBM on a random node (off)
//   reboot=NODE         state-loss reboot of NODE at mid-run (off)

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>

#include "harness/artifacts.hpp"
#include "harness/experiment.hpp"
#include "harness/faults.hpp"
#include "harness/runner.hpp"
#include "harness/topology_export.hpp"
#include "util/rng.hpp"
#include "stats/table.hpp"
#include "topo/topology.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

using namespace telea;
using namespace telea::time_literals;

namespace {

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

std::optional<ControlProtocol> parse_protocol(const std::string& name) {
  if (name == "tele") return ControlProtocol::kTele;
  if (name == "retele") return ControlProtocol::kReTele;
  if (name == "drip") return ControlProtocol::kDrip;
  if (name == "rpl") return ControlProtocol::kRpl;
  if (name == "orpl") return ControlProtocol::kOrpl;
  return std::nullopt;
}

std::optional<Topology> parse_topology(const Config& cfg, std::uint64_t seed) {
  const std::string name = cfg.get_string("topology", "indoor");
  if (name == "indoor") return make_indoor_testbed(seed);
  if (name == "tight") return make_tight_grid(seed);
  if (name == "sparse") return make_sparse_linear(seed);
  if (name == "random") {
    return make_connected_random(
        static_cast<std::size_t>(cfg.get_int("nodes", 40)),
        cfg.get_double("side", 120.0), seed);
  }
  if (name == "line") {
    return make_line(static_cast<std::size_t>(cfg.get_int("nodes", 40)),
                     cfg.get_double("spacing", 22.0));
  }
  return std::nullopt;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool append_text_line(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
      std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

// health= / flightrec= take "on" (feature only) or a path (feature + file
// export). "off"/"false"/"0"/"" keep the feature disabled.
bool opt_enabled(const std::string& v) {
  return !v.empty() && v != "off" && v != "false" && v != "0";
}
bool opt_is_bare_on(const std::string& v) {
  return v == "on" || v == "true" || v == "1";
}

void print_grouped(const char* title, const GroupedStats& g, bool pct,
                   const std::string& csv_dir, const std::string& csv_name) {
  TextTable table({"hop count", "samples", "value"});
  for (const auto& [hop, stats] : g.groups()) {
    table.row({std::to_string(hop), std::to_string(stats.count()),
               pct ? TextTable::fmt_pct(stats.mean(), 1)
                   : TextTable::fmt(stats.mean(), 2)});
  }
  std::printf("\n%s\n", title);
  table.print();
  if (!csv_dir.empty()) {
    table.write_csv(csv_dir + "/" + csv_name + ".csv");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc - 1, argv + 1);
  if (cfg.has("config")) {
    const auto file = Config::from_file(cfg.get_string("config"));
    if (!file.has_value()) {
      std::fprintf(stderr, "error: cannot read config file\n");
      return 2;
    }
    Config merged = *file;
    merged.merge(cfg);  // CLI wins
    cfg = merged;
  }

  const auto log_level = parse_log_level(cfg.get_string("log", "warn"));
  if (!log_level.has_value()) {
    std::fprintf(stderr,
                 "error: unknown log level (trace|debug|info|warn|error|off)\n");
    return 2;
  }
  Logger::set_level(*log_level);

  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  const auto runs = static_cast<unsigned>(cfg.get_int("runs", 1));
  const auto jobs = static_cast<unsigned>(cfg.get_int("jobs", 0));
  if (runs == 0) {
    std::fprintf(stderr, "error: runs must be >= 1\n");
    return 2;
  }
  const auto protocol = parse_protocol(cfg.get_string("protocol", "retele"));
  if (!protocol.has_value()) {
    std::fprintf(stderr, "error: unknown protocol (tele|retele|drip|rpl|orpl)\n");
    return 2;
  }
  const auto topology = parse_topology(cfg, seed);
  if (!topology.has_value()) {
    std::fprintf(stderr,
                 "error: unknown topology (indoor|tight|sparse|random|line)\n");
    return 2;
  }
  // nodes/side/spacing are read only by some topologies; touch them so a
  // valid-but-inapplicable key doesn't trip the unknown-option check below.
  (void)cfg.get_int("nodes", 40);
  (void)cfg.get_double("side", 120.0);
  (void)cfg.get_double("spacing", 22.0);

  ControlExperimentConfig experiment;
  experiment.network.topology = *topology;
  experiment.network.seed = seed;
  experiment.network.protocol = *protocol;
  experiment.network.wifi_interference = cfg.get_bool("wifi", false);
  experiment.warmup =
      static_cast<SimTime>(cfg.get_int("warmup", 20)) * kMinute;
  experiment.duration =
      static_cast<SimTime>(cfg.get_int("minutes", 40)) * kMinute;
  experiment.control_interval =
      static_cast<SimTime>(cfg.get_int("interval", 60)) * kSecond;
  experiment.data_ipi = static_cast<SimTime>(cfg.get_int("ipi", 600)) * kSecond;
  const std::string csv_dir = cfg.get_string("csv");
  const std::string dot_path = cfg.get_string("dot");
  const std::string trace_path = cfg.get_string("trace");
  const std::string metrics_dir = cfg.get_string("metrics");
  const std::string report_dir = cfg.get_string("report");
  const bool profile = cfg.get_bool("profile", false);
  const bool invariants = cfg.get_bool("invariants", false);
  const bool failfast = cfg.get_bool("failfast", false);
  const std::string health_opt = cfg.get_string("health");
  const std::string flightrec_opt = cfg.get_string("flightrec");
  const std::string timeline_opt = cfg.get_string("timeline");
  const std::string rules_path = cfg.get_string("rules");
  const auto sample_s = static_cast<SimTime>(cfg.get_int("sample", 10));
  std::vector<AlertRule> alert_rules;
  if (!rules_path.empty()) {
    std::vector<AlertParseError> errors;
    const auto rules = load_alert_rules(rules_path, &errors);
    if (!rules.has_value()) {
      for (const auto& e : errors) {
        std::fprintf(stderr, "error: %s:%zu: %s\n", rules_path.c_str(), e.line,
                     e.message.c_str());
      }
      return 2;
    }
    alert_rules = *rules;
  }
  const bool timeline_on = opt_enabled(timeline_opt) || !rules_path.empty();
  const auto churn = static_cast<std::size_t>(cfg.get_int("churn", 0));
  const auto downtime =
      static_cast<SimTime>(cfg.get_int("downtime", 120)) * kSecond;
  const double noise_dbm = cfg.get_double("noise", 1.0);  // >0 dBm = off
  const int reboot_node = static_cast<int>(cfg.get_int("reboot", -1));
  const SimTime duration = experiment.duration;

  // Per-trial callback installation. When runs > 1, every file sink below is
  // ".trialN"-suffixed so concurrent trials never share a stream — the
  // ArtifactRegistry turns a violation of that rule into exit 2.
  const auto invariant_violations =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  const auto configure_trial = [&](ControlExperimentConfig& trial, unsigned t,
                                   std::uint64_t trial_seed) {
    const auto sfx = [&](const std::string& path) {
      return runs > 1 && !path.empty() ? trial_artifact_path(path, t) : path;
    };
    const std::string dot_t = sfx(dot_path);
    const std::string trace_t = sfx(trace_path);
    const std::string metrics_t = sfx(metrics_dir);
    const std::string report_t = sfx(report_dir);
    const bool health_on = opt_enabled(health_opt);
    const std::string health_file = health_on && !opt_is_bare_on(health_opt)
                                        ? sfx(health_opt)
                                        : std::string();
    const bool flight_on = opt_enabled(flightrec_opt);
    const std::string flight_file = flight_on && !opt_is_bare_on(flightrec_opt)
                                        ? sfx(flightrec_opt)
                                        : std::string();
    const std::string timeline_file =
        opt_enabled(timeline_opt) && !opt_is_bare_on(timeline_opt)
            ? sfx(timeline_opt)
            : std::string();

    trial.on_warmed_up = [dot_t, trace_t, report_t, profile, invariants,
                          failfast, health_on, health_file, flight_on,
                          flight_file, timeline_on, timeline_file, alert_rules,
                          sample_s, churn, downtime, noise_dbm, reboot_node,
                          duration, trial_seed](Network& net) {
      if (!dot_t.empty() && !write_topology_dot(net, dot_t)) {
        TELEA_WARN("telea_sim") << "could not write " << dot_t;
      }
      if (!trace_t.empty() || !report_t.empty()) net.enable_tracing();
      if (profile) net.sim().set_profiling(true);
      if (invariants) {
        InvariantConfig icfg;
        icfg.fail_fast = failfast;
        net.enable_invariants(icfg);
      }
      if (health_on) {
        NetworkHealthConfig hcfg;
        hcfg.snapshot_jsonl = health_file;
        net.enable_health(hcfg);
      }
      if (flight_on) {
        net.enable_flight_recorders();
        if (!flight_file.empty()) {
          const std::string path = flight_file;
          net.on_flight_dump = [path](const FlightDump& dump) {
            if (!append_text_line(path, render_flight_dump_json(dump))) {
              TELEA_WARN("telea_sim") << "could not append to " << path;
            }
          };
        }
      }
      if (timeline_on) {
        NetworkTimelineConfig tcfg;
        tcfg.timeline.interval =
            sample_s > 0 ? sample_s * kSecond : 10 * kSecond;
        tcfg.rules = alert_rules;
        tcfg.jsonl = timeline_file;
        net.enable_timeline(tcfg);
      }

      // Fault plan over the measurement window (docs/ROBUSTNESS.md).
      const SimTime t0 = net.sim().now();
      FaultPlan plan;
      if (churn > 0 && duration > 2 * downtime) {
        // random_churn takes an absolute end time; leave one downtime of
        // slack so the last outage's revive still lands inside the
        // measurement.
        plan = FaultPlan::random_churn(net.size(), churn, t0 + kMinute,
                                       t0 + duration - downtime, downtime,
                                       trial_seed ^ 0x51Cull);
      }
      if (noise_dbm <= 0.0) {
        Pcg32 rng(trial_seed, 0x4011ull);
        const NodeId victim =
            static_cast<NodeId>(1 + rng.uniform(
                static_cast<std::uint32_t>(net.size() - 1)));
        plan.noise_burst(t0 + duration / 2, 2 * kMinute, {victim}, noise_dbm);
        std::printf("fault: noise burst at %.1f dBm on node %u mid-run\n",
                    noise_dbm, victim);
      }
      if (reboot_node >= 0 &&
          static_cast<std::size_t>(reboot_node) < net.size()) {
        plan.reboot_with_state_loss_at(t0 + duration / 3,
                                       static_cast<NodeId>(reboot_node));
        std::printf("fault: state-loss reboot of node %d at t+%.0f s\n",
                    reboot_node, to_seconds(duration / 3));
      }
      if (!plan.events().empty()) {
        std::printf("fault plan: %zu scheduled events\n",
                    plan.events().size());
        plan.apply(net);
      }
    };
    trial.on_finished = [trace_t, metrics_t, report_t, profile, flight_file,
                         timeline_file, invariant_violations](Network& net) {
      if (TimelineEngine* tl = net.timeline()) {
        tl->sample_now();  // close the run with a final boundary sample
        std::printf("timeline: %llu samples, %zu series, alerts fired %llu / "
                    "resolved %llu%s%s\n",
                    static_cast<unsigned long long>(tl->samples_taken()),
                    tl->series_count(),
                    static_cast<unsigned long long>(tl->alerts_fired_total()),
                    static_cast<unsigned long long>(
                        tl->alerts_resolved_total()),
                    timeline_file.empty() ? "" : " -> ",
                    timeline_file.c_str());
        for (const AlertState& a : tl->alerts()) {
          if (a.fired == 0) continue;
          std::printf("  alert %s: fired %llu, resolved %llu, last at "
                      "t+%.0f s (%s)\n",
                      a.rule.name.c_str(),
                      static_cast<unsigned long long>(a.fired),
                      static_cast<unsigned long long>(a.resolved),
                      to_seconds(a.last_fired),
                      a.active ? "still active" : "clear");
        }
      }
      if (NetworkHealthModel* health = net.health()) {
        const SimTime now = net.sim().now();
        std::printf("health: coverage %s (%zu/%zu fresh), %llu reports, "
                    "%llu bytes in-band, %llu stale-dropped\n",
                    TextTable::fmt_pct(health->coverage(now), 1).c_str(),
                    health->tracked() - health->stale_nodes(now).size(),
                    health->expected_nodes(),
                    static_cast<unsigned long long>(health->stats().reports),
                    static_cast<unsigned long long>(health->stats().bytes),
                    static_cast<unsigned long long>(
                        health->stats().stale_dropped));
        if (!net.health_config().snapshot_jsonl.empty()) {
          if (net.append_health_snapshot()) {
            std::printf("health: snapshots -> %s\n",
                        net.health_config().snapshot_jsonl.c_str());
          } else {
            TELEA_WARN("telea_sim")
                << "could not write " << net.health_config().snapshot_jsonl;
          }
        }
      }
      if (net.flight_recorders_enabled()) {
        std::printf("flightrec: %zu dump(s) captured%s%s\n",
                    net.flight_dumps().size(),
                    flight_file.empty() ? "" : " -> ", flight_file.c_str());
      }
      if (InvariantEngine* inv = net.invariants()) {
        inv->final_audit();
        invariant_violations->fetch_add(inv->violations().size(),
                                        std::memory_order_relaxed);
        std::printf("invariants: %llu checkpoints, %llu claims audited, "
                    "%zu violations\n",
                    static_cast<unsigned long long>(inv->checkpoints_run()),
                    static_cast<unsigned long long>(inv->claims_audited()),
                    inv->violations().size());
        if (!inv->violations().empty()) {
          std::printf("%s", inv->render_report().c_str());
        }
      }
      if (!trace_t.empty()) {
        if (net.tracer()->write_jsonl(trace_t)) {
          std::printf("trace: %zu records -> %s (%llu dropped)\n",
                      net.tracer()->size(), trace_t.c_str(),
                      static_cast<unsigned long long>(net.tracer()->dropped()));
        } else {
          TELEA_WARN("telea_sim") << "could not write " << trace_t;
        }
      }
      if (!metrics_t.empty()) {
        MetricsRegistry registry;
        net.collect_metrics(registry);
        std::error_code ec;
        std::filesystem::create_directories(metrics_t, ec);
        const std::string prom = metrics_t + "/metrics.prom";
        const std::string json = metrics_t + "/metrics.json";
        if (ec || !registry.write_prometheus(prom) ||
            !registry.write_json(json)) {
          TELEA_WARN("telea_sim") << "could not write metrics into "
                                  << metrics_t;
        } else {
          std::printf("metrics: %zu instruments -> %s, %s\n", registry.size(),
                      prom.c_str(), json.c_str());
        }
      }
      if (!report_t.empty()) {
        const std::vector<CommandSpan> spans = net.command_spans();
        const SpanEnergyConfig energy = net.span_energy_config();
        std::error_code ec;
        std::filesystem::create_directories(report_t, ec);
        const std::string report_path = report_t + "/report_sim.json";
        const std::string perfetto_path = report_t + "/trace.perfetto.json";
        if (ec ||
            !write_text_file(report_path,
                             render_report_json(spans, energy, "sim")) ||
            !write_text_file(perfetto_path, render_perfetto_json(spans))) {
          TELEA_WARN("telea_sim") << "could not write report into "
                                  << report_t;
        } else {
          std::printf("report: %zu command spans -> %s, %s\n", spans.size(),
                      report_path.c_str(), perfetto_path.c_str());
          const std::size_t failures = count_reconcile_failures(spans);
          if (failures > 0) {
            std::fprintf(stderr,
                         "telea_sim: %zu span(s) failed segment-sum "
                         "reconciliation\n",
                         failures);
          }
        }
      }
      if (profile) {
        std::printf("\nsimulator profile:\n%s",
                    net.sim().profile().render().c_str());
      }
    };
  };

  // A typo'd option silently falling back to its default would run (and
  // report on) the wrong experiment — reject instead.
  const auto unknown = cfg.unused_keys();
  if (!unknown.empty()) {
    for (const auto& key : unknown) {
      std::fprintf(stderr, "error: unknown option '%s'\n", key.c_str());
    }
    std::fprintf(
        stderr,
        "usage: telea_sim [config=FILE] [topology=NAME] [nodes=N] [side=M]\n"
        "                 [spacing=M] [protocol=NAME] [wifi=BOOL] [seed=N]\n"
        "                 [runs=N] [jobs=N]\n"
        "                 [warmup=MIN] [minutes=MIN] [interval=S] [ipi=S]\n"
        "                 [csv=DIR] [dot=FILE] [trace=FILE] [metrics=DIR]\n"
        "                 [report=DIR] [profile=BOOL] [invariants=BOOL]\n"
        "                 [failfast=BOOL] [health=on|FILE] [flightrec=on|FILE]\n"
        "                 [timeline=on|FILE] [rules=FILE] [sample=S]\n"
        "                 [log=LEVEL] [churn=N] [downtime=S]\n"
        "                 [noise=DBM] [reboot=NODE]\n"
        "(see the header of examples/telea_sim.cpp for defaults)\n");
    return 2;
  }

  std::printf("telea_sim: %s, %zu nodes, protocol %s, %s, seed %llu\n",
              topology->name.c_str(), topology->size(),
              protocol_name(*protocol),
              experiment.network.wifi_interference ? "WiFi interference"
                                                   : "clean channel",
              static_cast<unsigned long long>(seed));
  std::printf("warm-up %.0f min, measure %.0f min, control every %.0f s\n",
              to_seconds(experiment.warmup) / 60,
              to_seconds(experiment.duration) / 60,
              to_seconds(experiment.control_interval));

  // Build one config per trial. runs=1 keeps the seed (and output) exactly
  // as before; runs>1 derives per-trial seeds so replicates are independent.
  std::vector<ControlExperimentConfig> trials;
  trials.reserve(runs);
  for (unsigned t = 0; t < runs; ++t) {
    ControlExperimentConfig trial = experiment;
    std::uint64_t trial_seed = seed;
    if (runs > 1) {
      trial_seed = derive_trial_seed(seed, t);
      trial.network.topology = *parse_topology(cfg, trial_seed);
      trial.network.seed = trial_seed;
    }
    configure_trial(trial, t, trial_seed);
    trials.push_back(std::move(trial));
  }

  ControlExperimentResult r;
  try {
    TrialRunner runner(RunnerConfig{jobs, {}});
    const auto results =
        runner.run_indexed(trials.size(), [&trials](std::size_t i) {
          return run_control_experiment(trials[i]);
        });
    r = merge_results(results);
    if (runs > 1) {
      std::printf("\nrunner: %u trial(s) on %u worker(s), %.2f s wall\n", runs,
                  runner.jobs(), runner.last_wall_seconds());
    }
  } catch (const ArtifactConflictError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("\ncontrol packets: sent %u, delivered %u (PDR %s), "
              "e2e-acked %u\n",
              r.sent, r.delivered, TextTable::fmt_pct(r.pdr(), 1).c_str(),
              r.e2e_acked);
  std::printf("transmissions per control packet: %.2f\n", r.tx_per_control);
  std::printf("radio duty cycle: %s   battery current: %.3f mA\n",
              TextTable::fmt_pct(r.duty_cycle, 2).c_str(), r.current_ma);

  print_grouped("PDR by destination hop count:", r.pdr_by_hop, true, csv_dir,
                "sim_pdr");
  print_grouped("end-to-end delay (s) by hop count:", r.latency_by_hop, false,
                csv_dir, "sim_latency");
  print_grouped("accumulated tx hops by receiver hop count:", r.athx_by_hop,
                false, csv_dir, "sim_athx");
  if (invariant_violations->load(std::memory_order_relaxed) > 0) {
    std::fprintf(stderr, "telea_sim: %llu invariant violations\n",
                 static_cast<unsigned long long>(
                     invariant_violations->load(std::memory_order_relaxed)));
    return 3;
  }
  return 0;
}
