// Interference study: how WiFi coexistence changes remote-control behavior.
//
// The paper's channel-19 experiments (Sec. IV-B) motivate TeleAdjusting's
// opportunistic design: deterministic forwarding degrades under bursty
// interference while anycast barely notices. This example runs the same
// 40-node indoor network with the interferer off and on, and reports the
// knock-on effects end to end: delivery, latency, transmissions, duty cycle.
//
//   $ ./interference_study [seed]

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "stats/table.hpp"
#include "topo/topology.hpp"

using namespace telea;
using namespace telea::time_literals;

namespace {

ControlExperimentResult run(ControlProtocol proto, bool wifi,
                            std::uint64_t seed) {
  ControlExperimentConfig cfg;
  cfg.network.topology = make_indoor_testbed(seed);
  cfg.network.seed = seed;
  cfg.network.protocol = proto;
  cfg.network.wifi_interference = wifi;
  cfg.warmup = 15_min;
  cfg.duration = 25_min;
  return run_control_experiment(cfg);
}

double mean_latency(const ControlExperimentResult& r) {
  SummaryStats all;
  for (const auto& [hop, stats] : r.latency_by_hop.groups()) {
    (void)hop;
    all.merge(stats);
  }
  return all.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  std::printf("== WiFi interference study (40-node indoor testbed) ==\n\n");
  std::printf("%-10s %-12s %-8s %-12s %-10s %s\n", "protocol", "channel",
              "PDR", "latency (s)", "tx/packet", "duty");

  for (ControlProtocol proto :
       {ControlProtocol::kReTele, ControlProtocol::kRpl}) {
    for (bool wifi : {false, true}) {
      const auto r = run(proto, wifi, seed);
      std::printf("%-10s %-12s %-8s %-12.2f %-10.2f %.2f%%\n",
                  protocol_name(proto), wifi ? "19 (WiFi)" : "26 (clean)",
                  TextTable::fmt_pct(r.pdr(), 1).c_str(), mean_latency(r),
                  r.tx_per_control, r.duty_cycle * 100);
    }
  }

  std::printf(
      "\nReading: under WiFi, RPL's deterministic next-hops pay in PDR and\n"
      "retransmissions, while TeleAdjusting's anycast recruits whichever\n"
      "eligible relay the interference spared (paper Sec. IV-B2).\n");
  return 0;
}
