// Quickstart: build a small simulated WSN, let CTP form the collection tree
// and TeleAdjusting assign path codes, then remotely control a few nodes
// from the sink and watch the deliveries come back.
//
//   $ ./quickstart [seed]
//
// This is the minimal end-to-end tour of the public API: Topology ->
// NetworkConfig -> Network -> send_control().

#include <cstdio>
#include <cstdlib>

#include "harness/network.hpp"
#include "topo/topology.hpp"

using namespace telea;
using namespace telea::time_literals;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A 25-node random field, sink in the middle.
  NetworkConfig config;
  config.topology = make_uniform_random(/*nodes=*/25, /*side_m=*/90.0, seed);
  config.seed = seed;
  config.protocol = ControlProtocol::kReTele;

  Network net(config);
  net.start();

  std::printf("== TeleAdjusting quickstart ==\n");
  std::printf("nodes: %zu, protocol: %s\n", net.size(),
              protocol_name(config.protocol));

  // Let CTP converge and the path-code tree build (Sec. III-B: codes follow
  // the routing-found event by ~10 beacon rounds).
  net.run_for(3_min);
  std::printf("after 3 min: %.0f%% of nodes hold a path code\n",
              net.code_coverage() * 100.0);
  net.run_for(5_min);
  std::printf("after 8 min: %.0f%% of nodes hold a path code\n",
              net.code_coverage() * 100.0);

  // Show a few addresses the coding scheme produced.
  std::printf("\n%-6s %-8s %-10s %s\n", "node", "ctp-hops", "code-len",
              "path code");
  for (NodeId id = 1; id < 6 && id < net.size(); ++id) {
    const auto& addressing = net.node(id).tele()->addressing();
    if (!addressing.has_code()) {
      std::printf("%-6u (no code yet)\n", id);
      continue;
    }
    std::printf("%-6u %-8u %-10zu %s\n", id, net.node(id).ctp().hops(),
                addressing.code().size(),
                addressing.code().to_string().c_str());
  }

  // Remote-control a handful of nodes: the controller addresses each by its
  // reported path code; delivery and the e2e ack are reported below.
  unsigned delivered = 0, acked = 0;
  for (NodeId id = 1; id < net.size(); ++id) {
    net.node(id).tele()->on_control_delivered =
        [&delivered, id](const msg::ControlPacket& p, bool direct) {
          ++delivered;
          std::printf("  node %-3u got command %u after %u tx hops%s\n", id,
                      p.command, p.hops_so_far, direct ? " (detour)" : "");
        };
  }
  net.sink().tele()->on_e2e_ack = [&acked](std::uint32_t, NodeId) { ++acked; };

  std::printf("\nsending 10 control packets...\n");
  unsigned sent = 0;
  for (NodeId target = 1; sent < 10 && target < net.size(); ++target) {
    const auto& addressing = net.node(target).tele()->addressing();
    if (!addressing.has_code()) continue;
    net.sink().tele()->send_control(target, addressing.code(),
                                    static_cast<std::uint16_t>(100 + target));
    ++sent;
    net.run_for(20_s);
  }
  net.run_for(1_min);

  std::printf("\nsent=%u delivered=%u e2e-acked=%u\n", sent, delivered, acked);
  std::printf("mean radio duty cycle: %.2f%%\n",
              net.average_duty_cycle() * 100.0);
  return delivered == sent ? 0 : 1;
}
