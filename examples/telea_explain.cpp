// telea_explain — reconstructs a control packet's trajectory (relays,
// suppressions, backtracks, Re-Tele detours, ack path) from an exported
// JSONL decision trace. The reconstruction uses only the file: this is the
// offline workflow an operator would run against serial logs shipped off a
// real deployment.
//
//   $ ./telea_sim trace=run.jsonl ...        # produce a trace
//   $ ./telea_explain trace=run.jsonl        # explain every control packet
//   $ ./telea_explain trace=run.jsonl seqno=7
//
// Without trace=FILE the tool runs a built-in demo: a control-experiment
// style scenario on a random field where a relay node is killed mid-run, the
// trace is exported to JSONL, and the trajectories — including the
// backtracking and redirecting the failure provokes — are reconstructed from
// that file.
//
// Options:
//   trace=FILE      JSONL trace to explain (skips the demo)
//   seqno=N         explain only control packet N
//   node=N          only decision lines recorded at node N
//   path-only=true  suppress decision lines, print the relay path summary
//   deltas=true     per-line elapsed time since the previous line instead
//                   of absolute timestamps
//   out=FILE        demo: where to export the JSONL (telea_trace.jsonl)
//   seed=S          demo: RNG seed (3)

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "harness/faults.hpp"
#include "harness/network.hpp"
#include "stats/trace.hpp"
#include "topo/topology.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

using namespace telea;
using namespace telea::time_literals;

namespace {

/// Runs the fault-injection demo and exports its decision trace to `path`.
/// Returns false when the scenario could not address any destination.
bool run_demo(std::uint64_t seed, const std::string& path) {
  NetworkConfig config;
  config.topology = make_connected_random(30, 100.0, seed);
  config.seed = seed;
  config.protocol = ControlProtocol::kReTele;
  Network net(config);
  // A full hour of 30-node traffic overflows the default ring; keep the
  // whole run so both control packets survive to the export.
  Tracer& tracer = net.enable_tracing(1 << 20);

  std::printf("demo: 30-node random field, Re-Tele, seed %llu\n",
              static_cast<unsigned long long>(seed));
  net.start();
  net.run_for(15_min);  // routes + path codes form
  net.start_data_collection(10_min);
  std::printf("warm-up done: %.0f%% of nodes addressable\n",
              net.code_coverage() * 100);

  TeleAdjusting* sink = net.sink().tele();
  // Deepest addressable node: the longest trajectory to reconstruct.
  NodeId target = kInvalidNode;
  int target_hops = -1;
  for (NodeId i = 1; i < static_cast<NodeId>(net.size()); ++i) {
    const TeleAdjusting* tele = net.node(i).tele();
    if (tele == nullptr || !tele->addressing().has_code()) continue;
    const int hops = net.ctp_tree_depth(i);
    if (hops > target_hops) {
      target_hops = hops;
      target = i;
    }
  }
  if (target == kInvalidNode) {
    std::fprintf(stderr, "demo failed: no addressable destination\n");
    return false;
  }
  std::printf("target: node %u (%d CTP hops, path code %s)\n", target,
              target_hops,
              net.node(target).tele()->addressing().code().to_string().c_str());

  // Control packet over the healthy network.
  sink->send_control(target, net.node(target).tele()->addressing().code(),
                     0x0001);
  net.run_for(2_min);

  // Kill the target's parent — the likely relay — and send again while the
  // failure is fresh, so the forwarding machinery has to suppress, backtrack
  // and (Re-Tele) detour around the hole.
  const NodeId victim = net.node(target).ctp().parent();
  if (victim != kInvalidNode && victim != kSinkNode) {
    FaultPlan plan;
    plan.kill_at(net.sim().now() + 10_s, victim);
    plan.apply(net);
    std::printf("injecting failure: kill node %u (parent of %u)\n", victim,
                target);
  }
  net.run_for(30_s);
  sink->send_control(target, net.node(target).tele()->addressing().code(),
                     0x0002);
  net.run_for(5_min);

  if (!tracer.write_jsonl(path)) {
    std::fprintf(stderr, "demo failed: could not write %s\n", path.c_str());
    return false;
  }
  std::printf("exported %zu trace records to %s (%llu dropped)\n\n",
              tracer.size(), path.c_str(),
              static_cast<unsigned long long>(tracer.dropped()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::from_args(argc - 1, argv + 1);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 3));
  std::string path = cfg.get_string("trace");

  if (path.empty()) {
    path = cfg.get_string("out", "telea_trace.jsonl");
    if (!run_demo(seed, path)) return 1;
  }

  // From here on, everything is reconstructed solely from the JSONL file.
  std::size_t skipped = 0;
  const auto records = load_trace_jsonl(path, &skipped);
  if (!records.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  if (skipped > 0) {
    TELEA_WARN("telea_explain")
        << "skipped " << skipped << " malformed line(s) in " << path;
  }

  std::set<std::uint32_t> seqnos;
  if (cfg.has("seqno")) {
    seqnos.insert(static_cast<std::uint32_t>(cfg.get_int("seqno")));
  } else {
    for (const TraceRecord& r : *records) {
      if (r.event == TraceEvent::kControlTx) {
        seqnos.insert(static_cast<std::uint32_t>(r.a));
      }
    }
    if (seqnos.empty()) {
      std::printf("%s: no control packets in %zu records\n", path.c_str(),
                  records->size());
      return 0;
    }
  }

  ExplainOptions opts;
  if (cfg.has("node")) {
    opts.node = static_cast<NodeId>(cfg.get_int("node"));
  }
  opts.path_only = cfg.get_bool("path-only", false);
  opts.deltas = cfg.get_bool("deltas", false);

  std::printf("%s: %zu records, %zu control packet(s)\n\n", path.c_str(),
              records->size(), seqnos.size());
  for (const std::uint32_t seqno : seqnos) {
    std::fputs(explain_control(*records, seqno, opts).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}
