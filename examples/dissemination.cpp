// One-to-many dissemination: the paper notes TeleAdjusting "can be easily
// extended to application scenarios of one-to-all or one-to-many packet
// dissemination" (Sec. I). This example pushes the same command to a *set*
// of destinations and contrasts the cost with Drip's network-wide flood
// doing the same job.
//
//   $ ./dissemination [seed]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "harness/network.hpp"
#include "topo/topology.hpp"

using namespace telea;
using namespace telea::time_literals;

namespace {

struct Cost {
  unsigned delivered = 0;
  std::uint64_t tx_ops = 0;
  double duty = 0;
};

std::uint64_t total_ops(Network& net) {
  std::uint64_t ops = 0;
  for (NodeId i = 0; i < net.size(); ++i) ops += net.node(i).mac().send_ops();
  return ops;
}

Cost run_tele(std::uint64_t seed, const std::set<NodeId>& targets) {
  NetworkConfig config;
  config.topology = make_connected_random(25, 90.0, seed);
  config.seed = seed;
  config.protocol = ControlProtocol::kReTele;
  Network net(config);
  net.start();
  net.run_for(10_min);
  net.reset_accounting();
  const std::uint64_t base_ops = total_ops(net);

  Cost cost;
  for (NodeId t : targets) {
    net.node(t).tele()->on_control_delivered =
        [&cost](const msg::ControlPacket&, bool) { ++cost.delivered; };
  }
  for (NodeId t : targets) {
    const auto& addressing = net.node(t).tele()->addressing();
    if (!addressing.has_code()) continue;
    net.sink().tele()->send_control(t, addressing.code(), 0x42);
    net.run_for(15_s);  // pipeline a little; no need to fully serialize
  }
  net.run_for(1_min);
  cost.tx_ops = total_ops(net) - base_ops;
  cost.duty = net.average_duty_cycle();
  return cost;
}

Cost run_group(std::uint64_t seed, const std::set<NodeId>& targets) {
  NetworkConfig config;
  config.topology = make_connected_random(25, 90.0, seed);
  config.seed = seed;
  config.protocol = ControlProtocol::kReTele;
  Network net(config);
  net.start();
  net.run_for(10_min);
  net.reset_accounting();
  const std::uint64_t base_ops = total_ops(net);

  Cost cost;
  for (NodeId t : targets) {
    // Group deliveries can arrive via the shared packet or — for branches
    // with no group candidate — the per-destination fallback.
    net.node(t).tele()->group_control().on_delivered =
        [&cost](std::uint16_t, std::uint32_t) { ++cost.delivered; };
    net.node(t).tele()->on_control_delivered =
        [&cost](const msg::ControlPacket&, bool) { ++cost.delivered; };
  }
  std::vector<msg::GroupDest> dests;
  for (NodeId t : targets) {
    const auto& addressing = net.node(t).tele()->addressing();
    if (addressing.has_code()) {
      dests.push_back(msg::GroupDest{t, addressing.code()});
    }
  }
  net.sink().tele()->send_control_group(dests, 0x42);
  net.run_for(3_min);
  cost.tx_ops = total_ops(net) - base_ops;
  cost.duty = net.average_duty_cycle();
  return cost;
}

Cost run_drip(std::uint64_t seed, const std::set<NodeId>& targets) {
  NetworkConfig config;
  config.topology = make_connected_random(25, 90.0, seed);
  config.seed = seed;
  config.protocol = ControlProtocol::kDrip;
  Network net(config);
  net.start();
  net.run_for(10_min);
  net.reset_accounting();
  const std::uint64_t base_ops = total_ops(net);

  Cost cost;
  for (NodeId t : targets) {
    net.node(t).drip()->on_delivered =
        [&cost](const msg::DripMsg&) { ++cost.delivered; };
  }
  for (NodeId t : targets) {
    net.sink().drip()->disseminate(t, 0x42);
    net.run_for(15_s);
  }
  net.run_for(1_min);
  cost.tx_ops = total_ops(net) - base_ops;
  cost.duty = net.average_duty_cycle();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  // Retune a quarter of the field: nodes 3,6,9,...,24.
  std::set<NodeId> targets;
  for (NodeId t = 3; t < 25; t = static_cast<NodeId>(t + 3)) {
    targets.insert(t);
  }

  std::printf("== one-to-many control: TeleAdjusting vs Drip flood ==\n");
  std::printf("25-node field, %zu targets\n\n", targets.size());

  const Cost tele = run_tele(seed, targets);
  const Cost group = run_group(seed, targets);
  const Cost drip = run_drip(seed, targets);

  std::printf("%-18s %-12s %-16s %s\n", "protocol", "delivered",
              "transmissions", "duty cycle");
  std::printf("%-18s %u/%zu        %-16llu %.2f%%\n", "Tele (unicast xN)",
              tele.delivered, targets.size(),
              static_cast<unsigned long long>(tele.tx_ops), tele.duty * 100);
  std::printf("%-18s %u/%zu        %-16llu %.2f%%\n", "Tele (group)",
              group.delivered, targets.size(),
              static_cast<unsigned long long>(group.tx_ops),
              group.duty * 100);
  std::printf("%-18s %u/%zu        %-16llu %.2f%%\n", "Drip flood",
              drip.delivered, targets.size(),
              static_cast<unsigned long long>(drip.tx_ops), drip.duty * 100);

  if (tele.tx_ops > 0 && drip.tx_ops > tele.tx_ops) {
    std::printf("\nTeleAdjusting used %.1fx fewer transmissions than the "
                "flood; group mode saved a further %.0f%% over per-node "
                "unicasts\n",
                static_cast<double>(drip.tx_ops) /
                    static_cast<double>(tele.tx_ops),
                100.0 * (1.0 - static_cast<double>(group.tx_ops) /
                                   static_cast<double>(tele.tx_ops)));
  }
  return tele.delivered == targets.size() &&
                 group.delivered >= targets.size() - 1
             ? 0
             : 1;
}
